"""Signal/ambient-stack pairing: SR072.

The resilience and backend layers both rely on *stack discipline*:

* ``Checkpointer.install_signals`` reroutes SIGINT/SIGTERM and must be
  undone by ``restore_signals`` on every exit path — leaving the
  deferred-flush handler installed after the run corrupts every later
  ``KeyboardInterrupt``;
* the ambient stacks (``use_checkpoints``'s ``_default_stack``,
  ``use_backend``'s ``_AMBIENT``) are pushed on entry and must be
  popped on every exit path, or a single failed run poisons the
  ambient state of every subsequent engine construction.

The pass finds every *push site* (an ``install_signals`` call, or an
``.append`` on a module-level list global) and proves it balanced: the
statements following the push must be free of unprotected may-raise
statements until a ``try`` whose ``finally`` performs the matching pop
(``restore_signals`` on the same receiver / ``.pop()`` on the same
stack).  A matching pop reached directly with no may-raise statement
in between also balances (nothing can escape first).  Anything else is
SR072 at the push line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..diagnostics import Diagnostic, LintReport
from .astutil import attr_chain, make_diag, may_raise, parse_source

__all__ = ["PairSpec", "DEFAULT_PAIRS", "audit_pairs"]


@dataclass(frozen=True)
class PairSpec:
    """One push/pop method-name pair checked for stack discipline."""

    push: str
    pop: str
    kind: str  # "signal" | "stack"


#: the protocol-critical pairs of the resilience/backend layers
DEFAULT_PAIRS: tuple[PairSpec, ...] = (
    PairSpec("install_signals", "restore_signals", "signal"),
    PairSpec("append", "pop", "stack"),
)


def _module_stacks(tree: ast.Module) -> set[str]:
    """Module-level names bound to list literals (the ambient stacks)."""
    stacks: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if isinstance(node.value, ast.List):
                stacks.add(node.target.id)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            t = node.targets[0]
            if isinstance(t, ast.Name) and isinstance(node.value, ast.List):
                stacks.add(t.id)
    return {s for s in stacks if not s.startswith("__")}


@dataclass(frozen=True)
class _Site:
    """One push or pop call: receiver chain + the statement owning it."""

    receiver: str
    call: ast.Call
    stmt: ast.stmt


def _classify_call(
    call: ast.Call, stacks: set[str], pairs: tuple[PairSpec, ...]
) -> tuple[PairSpec, str, str] | None:
    """``(spec, role, receiver)`` when the call is a tracked push/pop."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    receiver = attr_chain(func.value)
    if receiver is None:
        return None
    for spec in pairs:
        if spec.kind == "stack" and receiver not in stacks:
            continue
        if func.attr == spec.push:
            return spec, "push", receiver
        if func.attr == spec.pop:
            return spec, "pop", receiver
    return None


def _sites_in(
    stmt: ast.stmt, stacks: set[str], pairs: tuple[PairSpec, ...], role: str
) -> list[tuple[PairSpec, _Site]]:
    """Tracked push/pop call sites inside one statement subtree."""
    out: list[tuple[PairSpec, _Site]] = []
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            hit = _classify_call(node, stacks, pairs)
            if hit is not None and hit[1] == role:
                out.append((hit[0], _Site(hit[2], node, stmt)))
    return out


def _pop_in_finally(
    try_stmt: ast.Try, spec: PairSpec, receiver: str, stacks: set[str],
    pairs: tuple[PairSpec, ...],
) -> bool:
    """Does the try's ``finally`` pop this receiver's pair?"""
    for stmt in try_stmt.finalbody:
        for found_spec, site in _sites_in(stmt, stacks, pairs, "pop"):
            if found_spec is spec and site.receiver == receiver:
                return True
    return False


def _is_safe_between(
    stmt: ast.stmt, stacks: set[str], pairs: tuple[PairSpec, ...]
) -> bool:
    """May this statement sit between a push and its protecting try?

    Safe: provably non-raising statements, and other tracked pushes
    (they are themselves checked for balance; ``list.append`` on the
    ambient stacks is treated as non-raising).
    """
    if not may_raise(stmt):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        return _classify_call(stmt.value, stacks, pairs) is not None
    if isinstance(stmt, ast.If):
        # a guarded push (`if signals: x.install_signals()`) whose body
        # holds only safe statements is safe as a whole
        return all(
            _is_safe_between(s, stacks, pairs) for s in stmt.body + stmt.orelse
        )
    return False


def _check_block(
    block: list[ast.stmt],
    continuation: list[ast.stmt],
    stacks: set[str],
    pairs: tuple[PairSpec, ...],
    report: LintReport,
    filename: str,
    subject: str,
    line_offset: int,
) -> None:
    """Walk one statement block; verify each push found is balanced.

    ``continuation`` is the statement list executing after this block
    (the enclosing blocks' tails) — a push at the end of an ``if``
    body is balanced by a ``try/finally`` that follows the ``if``.
    """
    for i, stmt in enumerate(block):
        rest = block[i + 1 :] + continuation
        # recurse into nested blocks with the right continuation
        if isinstance(stmt, ast.If):
            _check_block(stmt.body, rest, stacks, pairs, report, filename,
                         subject, line_offset)
            _check_block(stmt.orelse, rest, stacks, pairs, report, filename,
                         subject, line_offset)
        elif isinstance(stmt, ast.Try):
            _check_block(stmt.body, stmt.finalbody + rest, stacks, pairs,
                         report, filename, subject, line_offset)
            for handler in stmt.handlers:
                _check_block(handler.body, stmt.finalbody + rest, stacks,
                             pairs, report, filename, subject, line_offset)
            _check_block(stmt.finalbody, rest, stacks, pairs, report,
                         filename, subject, line_offset)
        elif isinstance(stmt, (ast.With, ast.For, ast.While)):
            _check_block(stmt.body, rest, stacks, pairs, report, filename,
                         subject, line_offset)
        else:
            for spec, site in _sites_in(stmt, stacks, pairs, "push"):
                if not _push_balanced(site, spec, rest, stacks, pairs):
                    report.add(
                        make_diag(
                            "SR072",
                            subject,
                            f"{site.receiver}.{spec.push}() is not paired "
                            f"with {spec.pop}() on every control path: the "
                            f"pop/restore must sit in a finally covering "
                            f"the pushed region",
                            filename,
                            site.call,
                            line_offset,
                            push=spec.push,
                            pop=spec.pop,
                            receiver=site.receiver,
                        )
                    )


def _push_balanced(
    site: _Site,
    spec: PairSpec,
    rest: list[ast.stmt],
    stacks: set[str],
    pairs: tuple[PairSpec, ...],
) -> bool:
    """Is one push balanced by the statements that execute after it?"""
    for stmt in rest:
        if isinstance(stmt, ast.Try):
            # only a finally-held pop survives an exception in the body
            return _pop_in_finally(stmt, spec, site.receiver, stacks, pairs)
        # direct pop with nothing risky in between: balanced
        for found_spec, pop_site in _sites_in(stmt, stacks, pairs, "pop"):
            if found_spec is spec and pop_site.receiver == site.receiver:
                return True
        if isinstance(stmt, ast.Return):
            return False
        if not _is_safe_between(stmt, stacks, pairs):
            return False
    return False


def audit_pairs(
    source: str,
    filename: str,
    pairs: tuple[PairSpec, ...] = DEFAULT_PAIRS,
    line_offset: int = 0,
) -> LintReport:
    """The SR072 pairing pass over one module's source."""
    report = LintReport()
    subject = "protocol:pairing"
    try:
        tree = parse_source(source, filename)
    except SyntaxError as exc:
        report.add(
            Diagnostic(
                "SR078",
                subject,
                f"source does not parse, nothing is proven: {exc}",
                {"file": filename, "line": exc.lineno or 0},
            )
        )
        return report
    stacks = _module_stacks(tree)
    n_pushes = 0
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Call):
                    hit = _classify_call(stmt, stacks, pairs)
                    if hit is not None and hit[1] == "push":
                        n_pushes += 1
            _check_block(
                list(node.body), [], stacks, pairs, report, filename,
                subject, line_offset,
            )
    if report.ok() and n_pushes:
        report.note(
            f"protocol pairing: {n_pushes} push site(s) in {filename} "
            f"balanced on all control paths "
            f"(stacks: {sorted(stacks) or 'none'})"
        )
    return report
