"""Spawn-safety pass: SR077.

Worker processes receive their inputs through exactly two channels:
the pickled ``initargs`` tuple handed to the pool initializer, and the
pickled task tuples handed to ``starmap``.  Anything else a worker
touches — an instance attribute captured in ``initargs``, a lambda, a
master-side mutable module global — either fails to pickle under the
``spawn`` start method or, worse, *silently diverges*: under ``fork``
the worker inherits a copy of the master's global at fork time, so a
master-side mutation after the fork is invisible to workers and the
parallel run drifts from the serial one without any exception.

The same discipline governs bare ``Process(target=..., args=...)``
constructions (the supervised job-worker slots of :mod:`repro.jobs`):
the ``target`` is the worker entrypoint, ``args`` its only inbound
channel, and both must survive pickling under ``spawn``.

The pass flags, per SR077:

* a pool ``initializer`` — or a process ``target`` — that is not a
  module-level function (bound methods and lambdas are unpicklable
  under ``spawn``);
* ``initargs``/``args`` elements that ship live resources: a bare
  ``self.<attr>`` whose attribute names a known-unpicklable resource
  (backends carry compiled-kernel handles; pools and shared-memory
  blocks are never picklable).  Chains like ``self._shm.name`` or
  ``self.backend.name`` are fine — they evaluate to plain strings
  before pickling;
* worker-side reads of master-side *mutable* module globals (names
  bound to dict/list/set literals at module level) that no worker
  function itself initialises via ``global`` assignment.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic, LintReport
from .astutil import attr_chain, func_defs, make_diag, parse_source, walk_calls

__all__ = ["UNPICKLABLE_ATTRS", "POOL_DISPATCH", "audit_spawn"]

#: ``self.<attr>`` resources that must never ride in ``initargs``
UNPICKLABLE_ATTRS = frozenset(
    {"backend", "metrics", "tracer", "chaos", "_pool", "_shm"}
)

#: pool methods whose first argument is executed in a worker process
POOL_DISPATCH = frozenset(
    {"map", "map_async", "starmap", "starmap_async", "apply", "apply_async",
     "imap", "imap_unordered"}
)

#: module-level value shapes that make a global master-side-mutable
_MUTABLE_LITERALS = (
    ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp,
)
_MUTABLE_FACTORIES = frozenset({"dict", "list", "set", "defaultdict"})


def _mutable_globals(tree: ast.Module) -> dict[str, ast.stmt]:
    """Module-level names bound to mutable containers, with their site."""
    out: dict[str, ast.stmt] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(value, _MUTABLE_LITERALS) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_FACTORIES
        )
        if not mutable:
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                out[t.id] = node
    return out


def _global_assigned_names(fn: ast.FunctionDef) -> set[str]:
    """Names a function declares ``global`` and assigns (worker init)."""
    declared: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    if not declared:
        return set()
    assigned: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name) and t.id in declared:
                    assigned.add(t.id)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            t = node.target
            if isinstance(t, ast.Name) and t.id in declared:
                assigned.add(t.id)
    return assigned


def _local_names(fn: ast.FunctionDef) -> set[str]:
    """Parameter and locally-assigned names (shadow module globals)."""
    names = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
    if fn.args.vararg:
        names.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        names.add(fn.args.kwarg.arg)
    declared_global: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                for e in t.elts if isinstance(t, ast.Tuple) else [t]:
                    if isinstance(e, ast.Name) and e.id not in declared_global:
                        names.add(e.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            t = node.target
            for e in t.elts if isinstance(t, ast.Tuple) else [t]:
                if isinstance(e, ast.Name):
                    names.add(e.id)
    return names


def _ctor_calls(tree: ast.Module, class_name: str) -> list[ast.Call]:
    """Every ``<class_name>(...)``-shaped constructor call in the module."""
    out = []
    for call in walk_calls(tree):
        name = attr_chain(call.func) or (
            call.func.id if isinstance(call.func, ast.Name) else ""
        )
        if name and name.split(".")[-1] == class_name:
            out.append(call)
    return out


def _dispatch_targets(tree: ast.Module) -> list[tuple[str, ast.Call]]:
    """Names dispatched to workers via pool map/starmap calls."""
    out: list[tuple[str, ast.Call]] = []
    for call in walk_calls(tree):
        func = call.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in POOL_DISPATCH
        ):
            continue
        receiver = attr_chain(func.value) or ""
        if "pool" not in receiver.lower():
            continue
        if call.args and isinstance(call.args[0], ast.Name):
            out.append((call.args[0].id, call))
    return out


def audit_spawn(
    source: str,
    filename: str,
    line_offset: int = 0,
    unpicklable_attrs: frozenset[str] = UNPICKLABLE_ATTRS,
) -> LintReport:
    """The SR077 pass over one executor module's source."""
    report = LintReport()
    subject = "protocol:spawn"

    def diag(code: str, message: str, node: ast.AST, **data: object) -> None:
        report.add(
            make_diag(
                code, subject, message, filename, node, line_offset, **data
            )
        )

    try:
        tree = parse_source(source, filename)
    except SyntaxError as exc:
        report.add(
            Diagnostic(
                "SR078",
                subject,
                f"source does not parse, nothing is proven: {exc}",
                {"file": filename, "line": exc.lineno or 0},
            )
        )
        return report

    module_functions = func_defs(tree)
    worker_names: set[str] = set()

    def check_entrypoint(v: ast.expr, role: str) -> None:
        """``initializer=``/``target=`` must be a module-level function."""
        if isinstance(v, ast.Name):
            if v.id in module_functions:
                worker_names.add(v.id)
            else:
                diag(
                    "SR077",
                    f"{role} {v.id!r} is not a module-level function — it "
                    f"cannot be pickled under the spawn start method",
                    v,
                    entrypoint=v.id,
                )
        elif v is not None and not (
            isinstance(v, ast.Constant) and v.value is None
        ):
            diag(
                "SR077",
                f"{role} is not a module-level function reference — "
                f"lambdas and bound methods cannot be pickled under the "
                f"spawn start method",
                v,
            )

    def check_shipped(value: ast.expr, role: str) -> None:
        """``initargs=``/``args=`` elements must pickle worker-side."""
        elts = (
            value.elts if isinstance(value, (ast.Tuple, ast.List)) else []
        )
        for elt in elts:
            if isinstance(elt, ast.Lambda):
                diag(
                    "SR077",
                    f"{role} ships a lambda — unpicklable under the spawn "
                    f"start method",
                    elt,
                )
                continue
            chain = attr_chain(elt)
            if (
                chain is not None
                and chain.startswith("self.")
                and chain.count(".") == 1
                and chain.split(".")[1] in unpicklable_attrs
            ):
                diag(
                    "SR077",
                    f"{role} ships {chain} — a live "
                    f"resource/compiled-handle object; pass a picklable "
                    f"identifier (e.g. {chain}.name) and re-resolve it "
                    f"worker-side",
                    elt,
                    attr=chain,
                )

    # -- initializer + initargs of every Pool() construction -----------
    pool_calls = _ctor_calls(tree, "Pool")
    for call in pool_calls:
        for kw in call.keywords:
            if kw.arg == "initializer":
                check_entrypoint(kw.value, "pool initializer")
            elif kw.arg == "initargs":
                check_shipped(kw.value, "initargs")

    # -- target + args of every Process() construction -----------------
    process_calls = _ctor_calls(tree, "Process")
    for call in process_calls:
        for kw in call.keywords:
            if kw.arg == "target":
                check_entrypoint(kw.value, "process target")
            elif kw.arg == "args":
                check_shipped(kw.value, "process args")

    # -- functions dispatched to workers -------------------------------
    for name, call in _dispatch_targets(tree):
        if name in module_functions:
            worker_names.add(name)
        else:
            diag(
                "SR077",
                f"pool dispatch target {name!r} is not a module-level "
                f"function — it cannot be pickled under the spawn start "
                f"method",
                call,
                target=name,
            )

    # -- worker-side reads of master-side mutable globals --------------
    mutable = _mutable_globals(tree)
    worker_fns = [module_functions[n] for n in sorted(worker_names)]
    worker_initialised: set[str] = set()
    for fn in worker_fns:
        worker_initialised |= _global_assigned_names(fn)
    for fn in worker_fns:
        locals_ = _local_names(fn)
        flagged: set[str] = set()
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable
            ):
                continue
            if node.id in worker_initialised or node.id in locals_:
                continue
            if node.id in flagged:
                continue
            flagged.add(node.id)
            diag(
                "SR077",
                f"worker function {fn.name} reads master-side mutable "
                f"global {node.id!r} — under fork it sees a stale copy, "
                f"under spawn a re-imported default; pass the value "
                f"through initargs or the task tuple instead",
                node,
                function=fn.name,
                name=node.id,
            )

    if report.ok() and (pool_calls or process_calls or worker_names):
        report.note(
            f"protocol spawn: {len(pool_calls)} pool and "
            f"{len(process_calls)} process construction(s), "
            f"{len(sorted(worker_names))} worker function(s) "
            f"spawn-safe ({', '.join(sorted(worker_names)) or 'none'})"
        )
    return report
