"""Shared AST plumbing for the protocol verifier.

All protocol passes analyse *source text* (so tests can feed seeded
mutants) and report locations as ``{"file": ..., "line": ...}`` data
payloads.  Line numbers are absolute file lines: callers analysing a
class snippet extracted with :func:`inspect.getsourcelines` pass the
snippet's ``line_offset`` and every diagnostic is shifted accordingly.

The central approximation used by the typestate and pairing passes is
the *may-raise* classification of statements: a statement that
provably cannot raise (constant/name/attribute stores, ``pass``,
``global``) may sit unprotected between a resource acquisition and its
protecting ``try``; anything containing a call, a subscript or
arithmetic is conservatively assumed to be able to raise and must be
covered by a handler that releases the resource.
"""

from __future__ import annotations

import ast
import textwrap
from typing import Iterable, Iterator

from ..diagnostics import Diagnostic

__all__ = [
    "attr_chain",
    "call_name",
    "class_def",
    "find_shm_attrs",
    "func_defs",
    "loc",
    "make_diag",
    "may_raise",
    "methods",
    "parse_source",
    "walk_calls",
]

#: builtins whose calls are treated as non-raising for protocol purposes
#: (``getattr`` with a default, type introspection, pure constructors)
SAFE_CALLS = frozenset(
    {"getattr", "isinstance", "len", "type", "id", "repr", "frozenset"}
)


def parse_source(source: str, filename: str) -> ast.Module:
    """Parse (possibly indented) source text into a module AST."""
    return ast.parse(textwrap.dedent(source), filename=filename)


def loc(filename: str, node: ast.AST, line_offset: int = 0) -> dict:
    """The standard location payload attached to every diagnostic."""
    return {"file": filename, "line": getattr(node, "lineno", 0) + line_offset}


def make_diag(
    code: str,
    subject: str,
    message: str,
    filename: str,
    node: ast.AST,
    line_offset: int = 0,
    **data: object,
) -> Diagnostic:
    """A diagnostic whose ``data`` leads with the file/line location."""
    payload = loc(filename, node, line_offset)
    payload.update(data)
    return Diagnostic(code, subject, message, payload)


def class_def(tree: ast.Module, name: str) -> ast.ClassDef | None:
    """The top-level class definition called ``name``, if present."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """Name -> def for the (sync) methods of a class body."""
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, ast.FunctionDef)
    }


def func_defs(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Name -> def for the module-level (sync) functions."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def attr_chain(node: ast.expr) -> str | None:
    """Render ``self.backend.name``-style chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call target (``shared_memory.SharedMemory``)."""
    return attr_chain(call.func)


def walk_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Every call expression inside ``node``, in document order."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _expr_may_raise(node: ast.expr) -> bool:
    """Can evaluating this expression raise (conservatively)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            fn = sub.func
            if isinstance(fn, ast.Name) and fn.id in SAFE_CALLS:
                continue
            return True
        if isinstance(sub, (ast.Subscript, ast.BinOp, ast.Await)):
            return True
    return False


def may_raise(stmt: ast.stmt) -> bool:
    """Can executing this *statement* raise (conservatively)?

    Compound statements (``if``/``for``/``try``/``with``) are treated
    as raising — callers that want to reason about their interior
    recurse explicitly.  Plain stores of constants, names and
    attribute chains are the only statements treated as safe.
    """
    if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal, ast.Import,
                         ast.ImportFrom)):
        return False
    if isinstance(stmt, ast.Expr):
        return _expr_may_raise(stmt.value)
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for t in targets:
            if not isinstance(t, (ast.Name, ast.Attribute)):
                return True  # subscript/tuple stores can raise
        value = stmt.value
        if value is None:
            return False
        return _expr_may_raise(value)
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and _expr_may_raise(stmt.value)
    return True


def find_shm_attrs(
    cls: ast.ClassDef,
) -> tuple[str | None, ast.AST | None, str | None, set[str]]:
    """Locate the shared-memory segment and its ndarray views in a class.

    Returns ``(shm_attr, creation_node, creation_method, view_attrs)``:
    the ``self.<attr>`` the ``SharedMemory(create=True)`` result is
    stored into, the creating statement, the method it appears in, and
    every ``self.<attr>`` assigned an ndarray built over the segment's
    ``buf``.
    """
    shm_attr: str | None = None
    creation: ast.AST | None = None
    creation_method: str | None = None
    view_attrs: set[str] = set()
    for name, fn in methods(cls).items():
        for stmt in ast.walk(fn):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            if value is None or not isinstance(value, ast.Call):
                continue
            callee = call_name(value) or ""
            target_attr = None
            for t in targets:
                chain = attr_chain(t) if isinstance(t, ast.Attribute) else None
                if chain is not None and chain.startswith("self."):
                    target_attr = chain.split(".", 1)[1]
            if target_attr is None or "." in target_attr:
                continue
            if callee.split(".")[-1] == "SharedMemory" and any(
                kw.arg == "create" for kw in value.keywords
            ):
                shm_attr = target_attr
                creation = stmt
                creation_method = name
            for kw in value.keywords:
                if kw.arg == "buffer":
                    chain = attr_chain(kw.value) or ""
                    if chain.startswith("self.") and chain.endswith(".buf"):
                        view_attrs.add(target_attr)
    return shm_attr, creation, creation_method, view_attrs


def stmt_blocks(fn: ast.FunctionDef) -> Iterable[list[ast.stmt]]:
    """Every statement block (list) nested anywhere inside a function."""
    stack: list[list[ast.stmt]] = [fn.body]
    while stack:
        block = stack.pop()
        yield block
        for stmt in block:
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub:
                    stack.append(sub)
            for handler in getattr(stmt, "handlers", []) or []:
                stack.append(handler.body)
