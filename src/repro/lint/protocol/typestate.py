"""SharedMemory lifecycle typestate: SR070 (leak) / SR071 (use-after-close).

The executor's shared segment follows a strict typestate protocol::

    CREATED --(close + unlink)--> RELEASED

and the verifier proves the transition happens on *every* control
path of :class:`repro.parallel.executor.ParallelChunkExecutor`:

* a **releaser** method must exist: one that (possibly through local
  aliases and ``getattr`` guards) calls both ``.close()`` and
  ``.unlink()`` on the segment — close without unlink leaves the
  backing file behind, unlink without close leaks the mapping;
* in the creating method (``__init__``), every statement after the
  creation that may raise must be covered by a ``try`` whose
  ``except``/``finally`` releases the segment before propagating —
  otherwise a failed construction leaks the segment until process
  exit (``__del__`` cannot save it: a half-built object may not reach
  the release path);
* ``close()`` must reach a releaser, ``__exit__`` must call ``close``
  (or a releaser), and the ``__del__`` GC safety net must exist,
  reference ``close`` and swallow *every* exception — during
  interpreter shutdown even the raise machinery is unreliable;
* after a releasing call, no method may touch the segment or an
  ndarray view into it again (SR071): the mapping is gone and a stale
  view dereference crashes the interpreter outright.

Everything is source-level; tests feed seeded mutants of the executor
source through :func:`audit_shm_lifecycle` directly.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic, LintReport
from .astutil import (
    attr_chain,
    class_def,
    find_shm_attrs,
    make_diag,
    may_raise,
    methods,
    parse_source,
    walk_calls,
)

__all__ = ["audit_shm_lifecycle", "releaser_methods"]


def _shm_refs(fn: ast.FunctionDef, shm_attr: str) -> set[str]:
    """Names referring to the segment inside one method.

    ``self.<shm_attr>`` plus local aliases bound by plain assignment
    (``shm = self._shm``), ``getattr(self, "<shm_attr>", ...)`` and
    swap patterns (``shm, self._shm = self._shm, None``).
    """
    refs = {f"self.{shm_attr}"}
    changed = True
    while changed:
        changed = False
        for stmt in ast.walk(fn):
            if not isinstance(stmt, ast.Assign):
                continue
            pairs: list[tuple[ast.expr, ast.expr]] = []
            if (
                len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Tuple)
                and isinstance(stmt.value, ast.Tuple)
                and len(stmt.targets[0].elts) == len(stmt.value.elts)
            ):
                pairs = list(zip(stmt.targets[0].elts, stmt.value.elts))
            elif len(stmt.targets) == 1:
                pairs = [(stmt.targets[0], stmt.value)]
            for target, value in pairs:
                if not isinstance(target, ast.Name) or target.id in refs:
                    continue
                chain = attr_chain(value)
                if chain in refs:
                    refs.add(target.id)
                    changed = True
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "getattr"
                    and len(value.args) >= 2
                    and isinstance(value.args[1], ast.Constant)
                    and value.args[1].value == shm_attr
                ):
                    refs.add(target.id)
                    changed = True
    return refs


def _release_calls(
    fn: ast.FunctionDef, shm_attr: str
) -> tuple[list[ast.Call], list[ast.Call]]:
    """``(close_calls, unlink_calls)`` on the segment inside one method."""
    refs = _shm_refs(fn, shm_attr)
    close_calls: list[ast.Call] = []
    unlink_calls: list[ast.Call] = []
    for call in walk_calls(fn):
        func = call.func
        if not isinstance(func, ast.Attribute):
            continue
        receiver = attr_chain(func.value)
        if receiver not in refs:
            continue
        if func.attr == "close":
            close_calls.append(call)
        elif func.attr == "unlink":
            unlink_calls.append(call)
    return close_calls, unlink_calls


def releaser_methods(cls: ast.ClassDef, shm_attr: str) -> set[str]:
    """Methods that (transitively) close *and* unlink the segment."""
    mets = methods(cls)
    direct = {
        name
        for name, fn in mets.items()
        if all(_release_calls(fn, shm_attr))
    }
    # transitive closure over self.<releaser>() calls
    changed = True
    while changed:
        changed = False
        for name, fn in mets.items():
            if name in direct:
                continue
            for call in walk_calls(fn):
                chain = attr_chain(call.func) or ""
                if chain.startswith("self.") and chain[5:] in direct:
                    direct.add(name)
                    changed = True
                    break
    return direct


def _calls_any(fn: ast.FunctionDef, names: set[str]) -> bool:
    """Does the method call ``self.<name>()`` for any listed name?

    ``getattr(self, "<name>", None)`` aliases followed by a call of
    the alias (the ``__del__`` shutdown idiom) also count.
    """
    aliases: set[str] = set()
    for stmt in ast.walk(fn):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == "getattr"
            and len(stmt.value.args) >= 2
            and isinstance(stmt.value.args[1], ast.Constant)
            and stmt.value.args[1].value in names
        ):
            aliases.add(stmt.targets[0].id)
    for call in walk_calls(fn):
        chain = attr_chain(call.func) or ""
        if chain.startswith("self.") and chain[5:] in names:
            return True
        if isinstance(call.func, ast.Name) and call.func.id in aliases:
            return True
    return False


def _protective_try(stmt: ast.stmt, releasers: set[str]) -> bool:
    """Is this a ``try`` whose failure path releases the segment?

    Accepted shapes: an ``except`` handler catching ``BaseException``/
    ``Exception`` (or bare) that calls a releaser and re-raises, or a
    ``finally`` that calls a releaser.
    """
    if not isinstance(stmt, ast.Try):
        return False
    if stmt.finalbody:
        fake = ast.FunctionDef(
            name="<finally>", args=_empty_args(), body=stmt.finalbody,
            decorator_list=[], returns=None, type_comment=None,
        )
        if _calls_any(fake, releasers):
            return True
    for handler in stmt.handlers:
        htype = handler.type
        if htype is not None:
            name = attr_chain(htype) or ""
            if name.split(".")[-1] not in ("BaseException", "Exception"):
                continue
        fake = ast.FunctionDef(
            name="<handler>", args=_empty_args(), body=handler.body,
            decorator_list=[], returns=None, type_comment=None,
        )
        reraises = any(
            isinstance(s, ast.Raise) and s.exc is None
            for s in ast.walk(ast.Module(body=handler.body, type_ignores=[]))
        )
        if _calls_any(fake, releasers) and reraises:
            return True
    return False


def _empty_args() -> ast.arguments:
    return ast.arguments(
        posonlyargs=[], args=[], vararg=None, kwonlyargs=[],
        kw_defaults=[], kwarg=None, defaults=[],
    )


def _view_uses(
    fn: ast.FunctionDef, attrs: set[str]
) -> list[tuple[ast.AST, str]]:
    """Reads/dereferences of ``self.<attr>`` for the given attrs.

    Plain ``self.X = None`` stores and ``is None`` guards are the
    release idiom and do not count; everything else — loads, subscript
    stores, method calls on the view — does.
    """
    exempt: set[int] = set()
    for stmt in ast.walk(fn):
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            if isinstance(value, ast.Constant) and value.value is None:
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for t in targets:
                    exempt.add(id(t))
        if isinstance(stmt, ast.Compare):
            exempt.update(id(c) for c in [stmt.left, *stmt.comparators])
    uses: list[tuple[ast.AST, str]] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Attribute):
            continue
        chain = attr_chain(node)
        if chain is None or not chain.startswith("self."):
            continue
        attr = chain.split(".")[1]
        if attr not in attrs or id(node) in exempt:
            continue
        uses.append((node, attr))
    return uses


def audit_shm_lifecycle(
    source: str,
    filename: str,
    class_name: str = "ParallelChunkExecutor",
    line_offset: int = 0,
) -> LintReport:
    """The SR070/SR071 typestate pass over one executor-like class."""
    report = LintReport()
    subject = f"protocol:{class_name}"

    def diag(code: str, message: str, node: ast.AST, **data: object) -> None:
        report.add(
            make_diag(
                code, subject, message, filename, node, line_offset, **data
            )
        )

    try:
        tree = parse_source(source, filename)
    except SyntaxError as exc:
        report.add(
            Diagnostic(
                "SR078",
                subject,
                f"source does not parse, nothing is proven: {exc}",
                {"file": filename, "line": exc.lineno or 0},
            )
        )
        return report
    cls = class_def(tree, class_name)
    if cls is None:
        diag("SR078", f"class {class_name} not found in {filename}", tree)
        return report
    shm_attr, creation, creation_method, view_attrs = find_shm_attrs(cls)
    if shm_attr is None or creation is None:
        diag(
            "SR078",
            f"{class_name} has no SharedMemory(create=True) site the "
            f"typestate analysis can anchor on",
            cls,
        )
        return report
    mets = methods(cls)

    # -- a releaser must exist (close AND unlink) ----------------------
    releasers = releaser_methods(cls, shm_attr)
    if not releasers:
        # close-without-unlink is the canonical leak: name its site
        where: ast.AST = creation
        detail = "no method releases it"
        for fn in mets.values():
            close_calls, unlink_calls = _release_calls(fn, shm_attr)
            if close_calls and not unlink_calls:
                where = close_calls[0]
                detail = (
                    f"{fn.name} closes the mapping but never unlinks the "
                    f"segment — the backing file persists after exit"
                )
                break
            if unlink_calls and not close_calls:
                where = unlink_calls[0]
                detail = (
                    f"{fn.name} unlinks the segment but never closes the "
                    f"mapping"
                )
                break
        diag(
            "SR070",
            f"self.{shm_attr} is created but {detail}",
            where,
            attr=shm_attr,
        )
        return report

    # -- creation method: exception paths must release -----------------
    create_fn = mets[creation_method] if creation_method else None
    if create_fn is not None:
        block = _enclosing_block(create_fn, creation)
        after = block[block.index(creation) + 1 :] if block else []
        for stmt in after:
            if isinstance(stmt, ast.Try):
                if not _protective_try(stmt, releasers):
                    diag(
                        "SR070",
                        f"try after the creation of self.{shm_attr} has no "
                        f"handler that releases the segment and re-raises — "
                        f"a failure here leaks it",
                        stmt,
                        attr=shm_attr,
                        method=creation_method,
                    )
                continue
            if may_raise(stmt):
                diag(
                    "SR070",
                    f"statement after the creation of self.{shm_attr} may "
                    f"raise outside any releasing try/except — a failed "
                    f"{creation_method} leaks the segment",
                    stmt,
                    attr=shm_attr,
                    method=creation_method,
                )

    # -- close() must reach a releaser ---------------------------------
    close_fn = mets.get("close")
    if close_fn is None:
        diag("SR070", f"{class_name} has no close() method", cls)
    elif "close" not in releasers:
        diag(
            "SR070",
            f"close() never reaches a method that closes and unlinks "
            f"self.{shm_attr}",
            close_fn,
            attr=shm_attr,
        )

    # -- __exit__ and the __del__ GC safety net ------------------------
    exit_fn = mets.get("__exit__")
    if exit_fn is not None and not _calls_any(
        exit_fn, releasers | {"close"}
    ):
        diag(
            "SR070",
            "__exit__ does not release the segment (close() unreached)",
            exit_fn,
        )
    del_fn = mets.get("__del__")
    if del_fn is None:
        diag(
            "SR070",
            f"{class_name} has no __del__ GC safety net: an executor "
            f"dropped without close() leaks the segment",
            cls,
        )
    else:
        if not _calls_any(del_fn, releasers | {"close"}):
            diag(
                "SR070",
                "__del__ never reaches close(): the GC safety net does "
                "not release the segment",
                del_fn,
            )
        for stmt in del_fn.body:
            if isinstance(stmt, ast.Try):
                caught = {
                    (attr_chain(h.type) or "").split(".")[-1]
                    if h.type is not None
                    else "BaseException"
                    for h in stmt.handlers
                }
                if "BaseException" not in caught:
                    diag(
                        "SR070",
                        "__del__ must swallow BaseException: during "
                        "interpreter shutdown any exception escaping a "
                        "finalizer is unreportable",
                        stmt,
                    )
            elif may_raise(stmt):
                diag(
                    "SR070",
                    "__del__ statement may raise outside a try — GC "
                    "finalizers must never propagate",
                    stmt,
                )

    # -- SR071: use-after-release within each method -------------------
    tracked = view_attrs | {shm_attr}
    for name, fn in mets.items():
        release_line = _first_release_line(fn, shm_attr, releasers)
        if release_line is None:
            continue
        for node, attr in _view_uses(fn, tracked):
            if node.lineno > release_line:
                diag(
                    "SR071",
                    f"{name} accesses self.{attr} after the segment has "
                    f"been released (line {release_line + line_offset}) — "
                    f"the mapping is gone",
                    node,
                    attr=attr,
                    method=name,
                    released_at=release_line + line_offset,
                )

    if report.ok():
        report.note(
            f"protocol typestate: self.{shm_attr} "
            f"(views: {sorted(view_attrs) or 'none'}) is released on every "
            f"path of {class_name} — releasers: {sorted(releasers)}"
        )
    return report


def _enclosing_block(
    fn: ast.FunctionDef, target: ast.AST
) -> list[ast.stmt] | None:
    """The statement list that directly contains ``target``."""
    from .astutil import stmt_blocks

    for block in stmt_blocks(fn):
        if any(s is target for s in block):
            return block
    return None


def _first_release_line(
    fn: ast.FunctionDef, shm_attr: str, releasers: set[str]
) -> int | None:
    """Line of the first releasing action inside one method, if any.

    A releasing action is a call to a releaser method (``close`` in
    the caller's frame is releasing only if it *is* a releaser) or a
    direct ``.unlink()`` on the segment.  The releaser's own interior
    (the close/unlink sequence itself) is exempted by only counting
    calls, not the unlink when the method is itself a releaser.
    """
    lines: list[int] = []
    is_releaser = fn.name in releasers
    for call in walk_calls(fn):
        chain = attr_chain(call.func) or ""
        if chain.startswith("self.") and chain[5:] in releasers:
            lines.append(call.lineno)
    if not is_releaser:
        _, unlink_calls = _release_calls(fn, shm_attr)
        lines.extend(c.lineno for c in unlink_calls)
    return min(lines) if lines else None
