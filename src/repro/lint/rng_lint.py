"""RNG draw-accounting audit: sequential kernels vs. ensemble twins.

The ensemble engine's contract (PR 1) is *bit-identity*: replica ``r``
of an ensemble simulator must consume random draws in exactly the
order of the matching sequential simulator seeded the same way.  That
contract is easy to break silently — one extra ``rng.random()`` in an
ensemble step block desynchronises every stream without failing any
invariant check.

This pass audits the contract *statically*: it parses the source of
each (sequential, ensemble) simulator pair with :mod:`ast`, collects
every random draw together with the stream it is drawn from, and
compares the tallies:

* a **replica-stream** draw (``self.rng`` sequentially; ``self.rngs[r]``
  or a local alias of it in the ensemble) of a kind the sequential
  twin never performs is an error (``SR030``);
* randomness that belongs to the *shared schedule* (chunk order,
  partition choice) must come from the dedicated schedule generator,
  never from a replica stream (``SR031``);
* a sequential draw kind missing from the ensemble twin is suspicious
  (``SR032``, warning) unless the pair declares it optional (e.g. the
  ``"weighted"`` strategy, intentionally unsupported by ensembles).

Draw kinds are ``numpy.random.Generator`` method names; the block-draw
helpers of :mod:`repro.core.rng` are mapped to the kind they consume
(``draw_sites -> integers``, ``draw_types -> random``,
``draw_exponentials -> exponential``).  ``types_from_uniforms``
consumes no randomness and is ignored.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import textwrap
from dataclasses import dataclass

from .diagnostics import Diagnostic, LintReport

__all__ = [
    "DrawEvent",
    "collect_draws",
    "collect_draws_source",
    "audit_events",
    "audit_pair",
    "audit_draws",
    "DRAW_PAIRS",
]


#: numpy Generator methods counted as draws
GENERATOR_METHODS = frozenset(
    {
        "random",
        "integers",
        "permutation",
        "choice",
        "exponential",
        "gamma",
        "normal",
        "standard_normal",
        "uniform",
        "shuffle",
    }
)

#: block-draw helpers of repro.core.rng -> underlying draw kind
HELPER_KINDS = {
    "draw_sites": "integers",
    "draw_types": "random",
    "draw_exponentials": "exponential",
}


@dataclass(frozen=True)
class DrawEvent:
    """One static draw site: kind, stream, and where it appears."""

    kind: str
    stream: str  # "replica" | "schedule"
    owner: str  # class defining the method
    method: str
    lineno: int


def _stream_of(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Classify the generator expression a draw is performed on.

    ``self.rng`` and ``self.rngs[...]`` are replica streams;
    ``self.schedule_rng`` is the shared-schedule stream; local names
    are resolved through simple-assignment aliases (``rng =
    self.rngs[r]``).  Anything else (module objects, unrelated calls)
    returns None and is not counted.
    """
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self" and node.attr == "rng":
            return "replica"
        if node.value.id == "self" and node.attr == "schedule_rng":
            return "schedule"
        return None
    if isinstance(node, ast.Subscript):
        base = node.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and base.attr == "rngs"
        ):
            return "replica"
        return None
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    return None


def _collect_aliases(fn: ast.FunctionDef) -> dict[str, str]:
    """Local names bound to a generator stream by simple assignment."""
    aliases: dict[str, str] = {}
    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                stream = _stream_of(stmt.value, aliases)
                if stream is not None:
                    aliases[target.id] = stream
    return aliases


def _draws_in_function(fn: ast.FunctionDef, owner: str) -> list[DrawEvent]:
    """All draw events inside one method body."""
    aliases = _collect_aliases(fn)
    events: list[DrawEvent] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # generator method call: <stream>.<method>(...)
        if isinstance(func, ast.Attribute) and func.attr in GENERATOR_METHODS:
            stream = _stream_of(func.value, aliases)
            if stream is not None:
                events.append(
                    DrawEvent(func.attr, stream, owner, fn.name, node.lineno)
                )
            continue
        # helper call: draw_types(<stream>, ...)
        if isinstance(func, ast.Name) and func.id in HELPER_KINDS and node.args:
            stream = _stream_of(node.args[0], aliases)
            if stream is not None:
                events.append(
                    DrawEvent(
                        HELPER_KINDS[func.id], stream, owner, fn.name, node.lineno
                    )
                )
    return events


def collect_draws_source(source: str) -> list[DrawEvent]:
    """Draw events from a source snippet of one or more class definitions."""
    tree = ast.parse(textwrap.dedent(source))
    events: list[DrawEvent] = []
    for cls_node in tree.body:
        if not isinstance(cls_node, ast.ClassDef):
            continue
        for item in cls_node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                events.extend(_draws_in_function(item, cls_node.name))
    return events


def collect_draws(cls: type) -> list[DrawEvent]:
    """Every static draw event of a simulator class, bases included.

    Walks the MRO restricted to classes defined inside the ``repro``
    package, parses each class source once, and gathers draw events
    from every method body.
    """
    events: list[DrawEvent] = []
    seen: set[str] = set()
    for klass in inspect.getmro(cls):
        if not klass.__module__.startswith("repro"):
            continue
        key = f"{klass.__module__}.{klass.__qualname__}"
        if key in seen:
            continue
        seen.add(key)
        events.extend(collect_draws_source(inspect.getsource(klass)))
    return events


@dataclass(frozen=True)
class DrawPair:
    """One (sequential, ensemble) simulator pair and its draw contract."""

    name: str
    sequential: str  # "module:Class"
    ensemble: str
    schedule_kinds: frozenset[str] = frozenset()
    optional_kinds: frozenset[str] = frozenset()


#: the audited pairs; schedule kinds are the draws that legitimately
#: move from the (single) sequential stream to the shared schedule
#: generator; optional kinds cover features ensembles deliberately
#: do not implement (PNDCA's state-dependent "weighted" strategy).
DRAW_PAIRS: tuple[DrawPair, ...] = (
    DrawPair("RSM", "repro.dmc.rsm:RSM", "repro.ensemble.rsm:EnsembleRSM"),
    DrawPair("NDCA", "repro.ca.ndca:NDCA", "repro.ensemble.ndca:EnsembleNDCA"),
    DrawPair(
        "PNDCA",
        "repro.ca.pndca:PNDCA",
        "repro.ensemble.pndca:EnsemblePNDCA",
        schedule_kinds=frozenset({"integers", "permutation", "choice"}),
        optional_kinds=frozenset({"choice"}),
    ),
)


def _load(spec: str) -> type:
    """Resolve a ``module:Class`` spec lazily (avoids import cycles)."""
    module, _, name = spec.partition(":")
    return getattr(importlib.import_module(module), name)


def audit_events(
    seq_events: list[DrawEvent],
    ens_events: list[DrawEvent],
    schedule_kinds: frozenset[str] = frozenset(),
    optional_kinds: frozenset[str] = frozenset(),
    subject: str = "pair",
) -> LintReport:
    """Compare draw tallies of a sequential/ensemble pair (event level)."""
    report = LintReport()
    seq_kinds = {e.kind for e in seq_events if e.stream == "replica"}
    ens_replica = {e.kind for e in ens_events if e.stream == "replica"}
    ens_schedule = {e.kind for e in ens_events if e.stream == "schedule"}

    for e in ens_events:
        if e.stream == "replica" and e.kind not in seq_kinds:
            report.add(
                Diagnostic(
                    code="SR030",
                    subject=subject,
                    message=(
                        f"{e.owner}.{e.method} (line {e.lineno}) draws "
                        f"{e.kind!r} from a replica stream, but the sequential "
                        f"kernel never draws it — replica streams desynchronise"
                    ),
                    data={"kind": e.kind, "method": f"{e.owner}.{e.method}"},
                )
            )
        if e.stream == "replica" and e.kind in schedule_kinds:
            report.add(
                Diagnostic(
                    code="SR031",
                    subject=subject,
                    message=(
                        f"{e.owner}.{e.method} (line {e.lineno}) draws schedule "
                        f"kind {e.kind!r} from a replica stream; shared-schedule "
                        f"randomness must come from the schedule generator"
                    ),
                    data={"kind": e.kind, "method": f"{e.owner}.{e.method}"},
                )
            )
    for kind in sorted(seq_kinds):
        if kind in optional_kinds:
            continue
        covered = (
            kind in ens_schedule if kind in schedule_kinds else kind in ens_replica
        )
        if not covered:
            where = "schedule" if kind in schedule_kinds else "replica"
            report.add(
                Diagnostic(
                    code="SR032",
                    subject=subject,
                    message=(
                        f"sequential kernel draws {kind!r} but the ensemble "
                        f"twin never draws it on its {where} stream"
                    ),
                    data={"kind": kind, "expected_stream": where},
                )
            )
    if not report.diagnostics:
        report.note(
            f"rng audit {subject}: replica draw kinds {sorted(seq_kinds)} "
            f"accounted for"
        )
    return report


def audit_pair(
    seq_cls: type,
    ens_cls: type,
    schedule_kinds: frozenset[str] = frozenset(),
    optional_kinds: frozenset[str] = frozenset(),
    subject: str | None = None,
) -> LintReport:
    """Compare the draw tallies of one sequential/ensemble class pair."""
    return audit_events(
        collect_draws(seq_cls),
        collect_draws(ens_cls),
        schedule_kinds=schedule_kinds,
        optional_kinds=optional_kinds,
        subject=subject or f"{seq_cls.__name__}/{ens_cls.__name__}",
    )


def audit_draws(pairs: tuple[DrawPair, ...] = DRAW_PAIRS) -> LintReport:
    """Audit every registered sequential/ensemble pair."""
    report = LintReport()
    for pair in pairs:
        report.extend(
            audit_pair(
                _load(pair.sequential),
                _load(pair.ensemble),
                schedule_kinds=pair.schedule_kinds,
                optional_kinds=pair.optional_kinds,
                subject=pair.name,
            )
        )
    return report
