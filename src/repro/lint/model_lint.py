"""Model sanity pass: probability mass, reachability, conservation.

All checks are static properties of the reaction-type set — nothing is
simulated:

* **Probability mass** (``SR010``): the NDCA selects reaction type
  ``i`` with probability ``k_i * dt`` at time step ``dt``; the per-site
  mass ``Σ_i k_i dt`` must not exceed 1, otherwise the CA's selection
  step is not a probability distribution.  The package's canonical
  discretisation ``dt = 1/K`` saturates the bound exactly; coarser
  steps violate it.
* **Reachability** (``SR011``/``SR012``): fixed-point closure of the
  species set under reaction target patterns, starting from the
  initial species set (by default the simulator convention: the vacant
  species, or the first species for models without one).  Reactions
  whose source pattern can never assemble are dead; species neither
  initial nor produced are unreachable.
* **Conservation** (``SR014``): every *declared* linear functional
  must lie in the null space of the stoichiometry matrix
  (:func:`repro.core.conservation.is_conserved`).
* **Hygiene** (``SR013``/``SR015``/``SR016``): null reactions, non-finite
  rate constants, duplicated change patterns.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..core.conservation import conserved_quantities, is_conserved
from ..core.model import Model
from ..core.species import EMPTY
from .diagnostics import Diagnostic, LintReport

__all__ = ["lint_model", "reachable_species", "probability_mass"]


def default_initial_species(model: Model) -> frozenset[str]:
    """The simulator default: all-vacant, or all-first-species."""
    if EMPTY in model.species:
        return frozenset({EMPTY})
    return frozenset({model.species.names[0]})


def reachable_species(
    model: Model, initial: Sequence[str] | None = None
) -> tuple[frozenset[str], frozenset[str]]:
    """Fixed-point closure ``(reachable species, enabled reactions)``.

    A reaction is (potentially) enabled once every species of its
    source pattern is reachable; its target species then become
    reachable.  This over-approximates dynamic reachability (it ignores
    geometry), so a reaction reported dead here is dead for *every*
    lattice and trajectory from the given initial species set.
    """
    reach = set(initial) if initial is not None else set(default_initial_species(model))
    unknown = reach - set(model.species.names)
    if unknown:
        raise ValueError(f"initial species {sorted(unknown)} not in model domain")
    enabled: set[str] = set()
    changed = True
    while changed:
        changed = False
        for rt in model.reaction_types:
            if rt.name in enabled:
                continue
            if all(c.src in reach for c in rt.changes):
                enabled.add(rt.name)
                changed = True
                for c in rt.changes:
                    reach.add(c.tg)
    return frozenset(reach), frozenset(enabled)


def probability_mass(model: Model, dt: float | None = None) -> float:
    """Per-site reaction probability mass ``Σ_i k_i * dt``.

    ``dt`` defaults to the canonical CA discretisation ``1/K``, for
    which the mass is exactly 1.
    """
    if dt is None:
        dt = 1.0 / model.total_rate
    return model.total_rate * dt


def lint_model(
    model: Model,
    dt: float | None = None,
    initial_species: Sequence[str] | None = None,
    conserved: Sequence[Mapping[str, float]] | None = None,
) -> LintReport:
    """Run the full model sanity pass; returns the diagnostics report.

    Parameters
    ----------
    dt:
        CA time step for the probability-mass check (default ``1/K``,
        the canonical choice, which always passes).
    initial_species:
        Species present in the initial configuration (default: the
        simulator convention).  Drives the reachability checks.
    conserved:
        Declared conservation laws, each a ``{species: coefficient}``
        mapping that must be invariant under every reaction.
    """
    report = LintReport()
    subject = model.name

    # --- rates ---------------------------------------------------------
    for rt in model.reaction_types:
        if not math.isfinite(rt.rate):
            report.add(
                Diagnostic(
                    code="SR015",
                    subject=subject,
                    message=f"reaction {rt.name!r} has non-finite rate {rt.rate!r}",
                    data={"reaction": rt.name, "rate": repr(rt.rate)},
                )
            )

    # --- probability mass ---------------------------------------------
    mass = probability_mass(model, dt)
    used_dt = dt if dt is not None else 1.0 / model.total_rate
    if mass > 1.0 + 1e-12:
        report.add(
            Diagnostic(
                code="SR010",
                subject=subject,
                message=(
                    f"per-site probability mass K*dt = {mass:g} > 1 at time "
                    f"step dt = {used_dt:g}; the NDCA selection step is not a "
                    f"distribution (largest admissible dt is "
                    f"{1.0 / model.total_rate:g})"
                ),
                data={"mass": mass, "dt": used_dt, "total_rate": model.total_rate},
            )
        )

    # --- reachability --------------------------------------------------
    initial = (
        frozenset(initial_species)
        if initial_species is not None
        else default_initial_species(model)
    )
    reach, enabled = reachable_species(model, sorted(initial))
    for rt in model.reaction_types:
        if rt.name not in enabled:
            missing = sorted({c.src for c in rt.changes} - reach)
            report.add(
                Diagnostic(
                    code="SR011",
                    subject=subject,
                    message=(
                        f"reaction {rt.name!r} is dead: source species "
                        f"{missing} are unreachable from initial species "
                        f"{sorted(initial)}"
                    ),
                    data={
                        "reaction": rt.name,
                        "missing": missing,
                        "initial": sorted(initial),
                    },
                )
            )
    for name in model.species.names:
        if name not in reach:
            report.add(
                Diagnostic(
                    code="SR012",
                    subject=subject,
                    message=(
                        f"species {name!r} is unreachable: not initial and "
                        f"produced by no enabled reaction"
                    ),
                    data={"species": name, "initial": sorted(initial)},
                )
            )

    # --- hygiene -------------------------------------------------------
    for rt in model.reaction_types:
        if rt.is_null():
            report.add(
                Diagnostic(
                    code="SR013",
                    subject=subject,
                    message=(
                        f"reaction {rt.name!r} is null (src == tg at every "
                        f"offset): it burns rate {rt.rate:g} without effect"
                    ),
                    data={"reaction": rt.name},
                )
            )
    seen_patterns: dict[tuple, str] = {}
    for rt in model.reaction_types:
        key = tuple(sorted((c.offset, c.src, c.tg) for c in rt.changes))
        prev = seen_patterns.get(key)
        if prev is not None:
            report.add(
                Diagnostic(
                    code="SR016",
                    subject=subject,
                    message=(
                        f"reactions {prev!r} and {rt.name!r} share an identical "
                        f"change pattern; their rates should be merged"
                    ),
                    data={"reactions": [prev, rt.name]},
                )
            )
        else:
            seen_patterns[key] = rt.name

    # --- conservation --------------------------------------------------
    for law in conserved or ():
        if not is_conserved(model, dict(law)):
            report.add(
                Diagnostic(
                    code="SR014",
                    subject=subject,
                    message=(
                        f"declared conservation law {dict(law)} is violated "
                        f"by the stoichiometry"
                    ),
                    data={"law": {k: float(v) for k, v in dict(law).items()}},
                )
            )
    basis = [
        {k: int(v) if float(v).is_integer() else float(v) for k, v in law.items()}
        for law in conserved_quantities(model)
    ]
    report.note(
        f"model {model.name!r}: probability mass K*dt = {mass:g}, "
        f"{len(enabled)}/{model.n_types} reactions reachable, "
        f"conserved basis {basis}"
    )
    return report
