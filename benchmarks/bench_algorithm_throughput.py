"""Throughput comparison across the full algorithm taxonomy.

One trial-throughput measurement per implemented algorithm on the
same CO-oxidation workload — the performance landscape behind the
paper's accuracy-for-speed trade (exact DMC at the bottom, chunked
vectorised CA at the top).
"""

import pytest

from repro.core import Lattice
from repro.models import ziff_model
from repro.partition import five_chunk_partition
from repro.taxonomy import REGISTRY, make_simulator

MODEL = ziff_model()
LATTICE = Lattice((50, 50))
P5 = five_chunk_partition(LATTICE)
P5.validate_conflict_free(MODEL)

#: per-algorithm constructor kwargs (event-driven methods get shorter
#: horizons: their per-event python cost dominates)
CASES = {
    "rsm": ({}, 5.0),
    "vssm": ({}, 0.3),
    "frm": ({}, 0.3),
    "ndca": ({}, 5.0),
    "pndca": ({"partition": P5}, 5.0),
    "lpndca": ({"partition": P5, "L": "chunk", "chunk_selection": "random-order"}, 5.0),
    "typepart": ({}, 5.0),
    "dd-rsm": ({"n_strips": 4}, 5.0),
    "sync-ca": ({"on_conflict": "discard"}, 5.0),
}


@pytest.mark.parametrize("key", sorted(CASES))
def test_algorithm_throughput(benchmark, key):
    kwargs, horizon = CASES[key]
    assert key in REGISTRY

    def run():
        sim = make_simulator(key, MODEL, LATTICE, seed=1, **kwargs)
        return sim.run(until=horizon)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.n_trials > 0


def test_throughput_report(benchmark, save_report):
    """Summarise trials/second for every algorithm into one table."""
    import time

    from repro.io import format_table

    def collect():
        rows = []
        for key in sorted(CASES):
            kwargs, horizon = CASES[key]
            sim = make_simulator(key, MODEL, LATTICE, seed=1, **kwargs)
            t0 = time.perf_counter()
            res = sim.run(until=horizon)
            wall = time.perf_counter() - t0
            rows.append(
                (
                    key,
                    REGISTRY[key].family,
                    "exact" if REGISTRY[key].exact else "approx",
                    f"{res.n_trials / wall / 1e6:.2f}",
                    f"{res.acceptance:.3f}",
                )
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    save_report(
        "algorithm_throughput",
        "Algorithm throughput on the CO-oxidation workload (50x50)\n"
        + format_table(["algorithm", "family", "ME", "Mtrials/s", "acceptance"], rows),
    )


# ----------------------------------------------------------------------
# stacked-ensemble engine vs. loop-over-replicas baseline
# ----------------------------------------------------------------------

ENS_LATTICE = Lattice((64, 64))
ENS_UNTIL = 2.0


def _ensemble_case(n_replicas: int):
    """Measure loop vs. stacked PNDCA for one replica count."""
    import time

    import numpy as np

    from repro.ca.pndca import PNDCA
    from repro.ensemble import EnsemblePNDCA, run_replicated
    from repro.partition.coloring import greedy_partition

    part = greedy_partition(ENS_LATTICE, MODEL)
    seeds = [100 + i for i in range(n_replicas)]

    def factory(s):
        return PNDCA(MODEL, ENS_LATTICE, seed=s, partition=part, strategy="ordered")

    t0 = time.perf_counter()
    loop_results = run_replicated(factory, seeds, ENS_UNTIL)
    t_loop = time.perf_counter() - t0
    loop_trials = sum(r.n_trials for r in loop_results)

    ens = EnsemblePNDCA(MODEL, ENS_LATTICE, seeds=seeds, partition=part)
    t0 = time.perf_counter()
    eres = ens.run(until=ENS_UNTIL)
    t_ens = time.perf_counter() - t0

    identical = all(
        np.array_equal(eres.states[i], r.final_state.array.reshape(-1))
        for i, r in enumerate(loop_results)
    )
    return {
        "R": n_replicas,
        "loop_mps": loop_trials / t_loop / 1e6,
        "ens_mps": eres.total_trials / t_ens / 1e6,
        "speedup": t_loop / t_ens,
        "identical": identical,
    }


@pytest.mark.parametrize("n_replicas", [16, 64])
def test_ensemble_vs_loop(benchmark, save_report, n_replicas):
    """Stacked ensemble must beat the replica loop >= 3x and bit-match it.

    Site-visit throughput (trials/s summed over replicas) on the 64x64
    ZGB workload — the acceptance bar for the vectorised replication
    route ("averaging of a large number of small, independent
    simulations").
    """
    row = benchmark.pedantic(lambda: _ensemble_case(n_replicas), rounds=1, iterations=1)
    save_report(
        f"ensemble_vs_loop_R{n_replicas}",
        f"Stacked PNDCA ensemble vs replica loop (64x64 ZGB, R={row['R']})\n"
        f"loop: {row['loop_mps']:.2f} Mtrials/s  "
        f"ensemble: {row['ens_mps']:.2f} Mtrials/s  "
        f"speedup: {row['speedup']:.2f}x  bit-identical: {row['identical']}",
    )
    assert row["identical"], "ensemble diverged from sequential replicas"
    assert row["speedup"] >= 3.0, f"ensemble speedup {row['speedup']:.2f}x < 3x"
