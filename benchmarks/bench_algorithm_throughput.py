"""Throughput comparison across the full algorithm taxonomy.

One trial-throughput measurement per implemented algorithm on the
same CO-oxidation workload — the performance landscape behind the
paper's accuracy-for-speed trade (exact DMC at the bottom, chunked
vectorised CA at the top).
"""

import pytest

from repro.core import Lattice
from repro.models import ziff_model
from repro.partition import five_chunk_partition
from repro.taxonomy import REGISTRY, make_simulator

MODEL = ziff_model()
LATTICE = Lattice((50, 50))
P5 = five_chunk_partition(LATTICE)
P5.validate_conflict_free(MODEL)

#: per-algorithm constructor kwargs (event-driven methods get shorter
#: horizons: their per-event python cost dominates)
CASES = {
    "rsm": ({}, 5.0),
    "vssm": ({}, 0.3),
    "frm": ({}, 0.3),
    "ndca": ({}, 5.0),
    "pndca": ({"partition": P5}, 5.0),
    "lpndca": ({"partition": P5, "L": "chunk", "chunk_selection": "random-order"}, 5.0),
    "typepart": ({}, 5.0),
    "dd-rsm": ({"n_strips": 4}, 5.0),
    "sync-ca": ({"on_conflict": "discard"}, 5.0),
}


@pytest.mark.parametrize("key", sorted(CASES))
def test_algorithm_throughput(benchmark, key):
    kwargs, horizon = CASES[key]
    assert key in REGISTRY

    def run():
        sim = make_simulator(key, MODEL, LATTICE, seed=1, **kwargs)
        return sim.run(until=horizon)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.n_trials > 0


def test_throughput_report(benchmark, save_report):
    """Summarise trials/second for every algorithm into one table."""
    import time

    from repro.io import format_table

    def collect():
        rows = []
        for key in sorted(CASES):
            kwargs, horizon = CASES[key]
            sim = make_simulator(key, MODEL, LATTICE, seed=1, **kwargs)
            t0 = time.perf_counter()
            res = sim.run(until=horizon)
            wall = time.perf_counter() - t0
            rows.append(
                (
                    key,
                    REGISTRY[key].family,
                    "exact" if REGISTRY[key].exact else "approx",
                    f"{res.n_trials / wall / 1e6:.2f}",
                    f"{res.acceptance:.3f}",
                )
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    save_report(
        "algorithm_throughput",
        "Algorithm throughput on the CO-oxidation workload (50x50)\n"
        + format_table(["algorithm", "family", "ME", "Mtrials/s", "acceptance"], rows),
    )
