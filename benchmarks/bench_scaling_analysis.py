"""Benchmark: scaling analysis derived from the Fig. 7 machine model.

Strong scaling (fixed N), weak scaling (fixed N/p) and the
isoefficiency function — the classical HPC view of the paper's
partitioned algorithm.
"""

from repro.io import format_table
from repro.parallel import (
    DEFAULT_2003,
    isoefficiency_sites,
    strong_scaling,
    weak_scaling,
)


def test_scaling_analysis(benchmark, save_report):
    def run():
        strong = strong_scaling(DEFAULT_2003, 600 * 600, [2, 4, 8, 16])
        weak = weak_scaling(DEFAULT_2003, sites_per_processor=50_000, ps=[2, 4, 8, 16])
        iso = isoefficiency_sites(DEFAULT_2003, 0.7, [2, 4, 8])
        return strong, weak, iso

    strong, weak, iso = benchmark(run)
    # strong scaling saturates; weak scaling stays efficient
    assert strong[-1][2] < strong[0][2]
    assert all(e > 0.5 for _, _, e in weak)
    # isoefficiency grows with p
    sizes = [n for _, n in iso if n is not None]
    assert sizes == sorted(sizes)

    text = [
        "Scaling analysis on the modelled machine (PNDCA, 5 chunks)",
        "",
        "strong scaling (N = 600x600):",
        format_table(
            ["p", "speedup", "efficiency"],
            [(p, f"{s:.2f}", f"{e:.2f}") for p, s, e in strong],
        ),
        "",
        "weak scaling (50k sites per processor):",
        format_table(
            ["p", "N", "efficiency"],
            [(p, n, f"{e:.2f}") for p, n, e in weak],
        ),
        "",
        "isoefficiency (target E = 0.7):",
        format_table(
            ["p", "sites needed"],
            [(p, n if n is not None else "unreachable") for p, n in iso],
        ),
    ]
    save_report("scaling_analysis", "\n".join(text))
