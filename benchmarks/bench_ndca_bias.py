"""Benchmark: NDCA site-selection bias (Ising / single-file probes)."""

from repro.experiments import ndca_bias


def test_ndca_bias_probes(benchmark, save_report):
    result = benchmark.pedantic(ndca_bias.run_ndca_bias, rounds=1, iterations=1)
    # the documented degeneracy: raster sweeps advect 1-d particles,
    # inflating the tracer MSD by a large factor
    assert result.sf_msd_ndca > 2 * result.sf_msd_rsm
    save_report("ndca_bias", ndca_bias.ndca_bias_report(result))
