"""Fig. 7 benchmark: the PNDCA speedup surface.

Regenerates the speedup table T(1,N)/T(p,N) on the calibrated machine
model (compute term measured from the real vectorised kernels), checks
the paper's qualitative shape, and verifies the real multiprocessing
executor against the serial algorithm.  Also contrasts PNDCA's modelled
overhead with the Segers domain-decomposition route (the paper's
volume/boundary discussion).
"""

import numpy as np

from repro.core import Lattice
from repro.experiments import fig7_speedup
from repro.io import format_table
from repro.models import ziff_model
from repro.parallel import DEFAULT_2003, DomainDecomposedRSM


def test_fig7_speedup_surface(benchmark, save_report):
    result = benchmark.pedantic(
        fig7_speedup.run_fig7, rounds=1, iterations=1
    )
    surf = result.surface
    # paper shape: growth with N, saturation in p, max ~7-8
    assert (np.diff(surf, axis=0) >= -1e-9).all()
    assert 6.0 <= result.max_speedup <= 9.0
    assert result.executor_verified
    save_report("fig7", fig7_speedup.fig7_report(result))


def test_fig7_domain_decomposition_comparison(benchmark, save_report):
    """The Segers route: boundary communication scales with the strip
    perimeter, so the modelled efficiency falls as p grows."""
    model = ziff_model()
    lat = Lattice((48, 48))

    def run():
        rows = []
        for p in (2, 4, 8):
            sim = DomainDecomposedRSM(model, lat, seed=0, n_strips=p)
            sim.run(until=2.0)
            # strips compute concurrently: serial work / modelled time
            serial = sim.n_trials * DEFAULT_2003.t_trial
            parallel = sim.modelled_parallel_time(DEFAULT_2003)
            rows.append(
                (
                    p,
                    sim.volume_boundary_ratio(),
                    sim.boundary_events,
                    serial / max(parallel, 1e-12),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = [r[1] for r in rows]
    assert ratios == sorted(ratios, reverse=True)  # thinner strips, worse ratio
    save_report(
        "fig7_domain_decomposition",
        "Domain decomposition (Segers) volume/boundary trade-off\n"
        + format_table(
            ["strips p", "volume/boundary", "boundary events", "modelled speedup"],
            rows,
        ),
    )
