"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper (see
DESIGN.md for the mapping) and, besides timing, writes the experiment's
plain-text report to ``benchmarks/reports/<name>.txt`` so the
reproduction artefacts survive the run.
"""

from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def save_report(report_dir):
    """Write an experiment report; returns the path."""

    def _save(name: str, text: str) -> Path:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
