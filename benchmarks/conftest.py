"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper (see
DESIGN.md for the mapping) and, besides timing, writes the experiment's
plain-text report to ``benchmarks/reports/<name>.txt`` so the
reproduction artefacts survive the run.  All writes are atomic
(temp file + ``os.replace``): an interrupted run never leaves a
truncated report behind.
"""

from pathlib import Path

import pytest

from repro.obs import bench_record, write_bench_json, write_text_atomic

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def save_report(report_dir):
    """Atomically write an experiment report; returns the path."""

    def _save(name: str, text: str) -> Path:
        path = report_dir / f"{name}.txt"
        write_text_atomic(path, text + "\n")
        return path

    return _save


@pytest.fixture
def save_bench_json(report_dir):
    """Atomically write a schema-validated ``BENCH_<name>.json`` report."""

    def _save(name: str, **fields) -> Path:
        return write_bench_json(report_dir, bench_record(name=name, **fields))

    return _save
