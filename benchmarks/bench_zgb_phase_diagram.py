"""Extra benchmark: the ZGB kinetic phase diagram ("Ziff model" data).

Sweeps the CO mole fraction with the fast PNDCA and locates the two
kinetic phase transitions; the reproduction contract is the *shape*
(O-poisoned / reactive / CO-poisoned) with transitions near the
literature values y1 ~ 0.39, y2 ~ 0.525.
"""

import math

import numpy as np

from repro.experiments import phase_diagram


def test_zgb_phase_diagram(benchmark, save_report):
    diagram = benchmark.pedantic(
        phase_diagram.run_phase_diagram,
        kwargs=dict(
            ys=np.arange(0.30, 0.60 + 1e-9, 0.025),
            side=50,
            until=150.0,
        ),
        rounds=1,
        iterations=1,
    )
    y1, y2 = diagram.transition_estimates()
    assert not math.isnan(y1) and abs(y1 - 0.39) < 0.06
    assert not math.isnan(y2) and abs(y2 - 0.525) < 0.06
    # reactive window exists between the transitions
    reactive = [p for p in diagram.points if y1 < p.y < y2]
    assert any(p.poisoned == "-" for p in reactive)
    save_report("zgb_phase_diagram", phase_diagram.phase_diagram_report(diagram))
