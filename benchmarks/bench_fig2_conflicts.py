"""Fig. 2 benchmark: synchronous-update conflict detection on diffusion."""

from repro.experiments import fig2_conflicts


def test_fig2_conflicts(benchmark, save_report):
    points = benchmark.pedantic(
        fig2_conflicts.run_fig2,
        kwargs=dict(densities=(0.1, 0.3, 0.5, 0.7), side=32, steps=50),
        rounds=1,
        iterations=1,
    )
    assert all(p.discard_conserves for p in points)
    assert all(p.unsafe_violates for p in points)
    # conflicts grow with density (the Fig. 2 mechanism)
    rates = [p.conflict_rate for p in points]
    assert rates == sorted(rates)
    save_report("fig2", fig2_conflicts.fig2_report(points))
