"""Figs. 5/6 benchmark: reaction-type partitioning on the Ziff model."""

from repro.experiments import fig6_typepart


def test_fig6_type_partitioning(benchmark, save_report):
    result = benchmark.pedantic(
        fig6_typepart.run_fig6,
        kwargs=dict(side=20, until=5.0),
        rounds=1,
        iterations=1,
    )
    assert result.checkerboard_valid
    assert result.chunks_per_subset == 2
    assert result.chunks_all_types == 5
    save_report("fig6", fig6_typepart.fig6_report(result))
