"""Fig. 4 benchmark: constructing + proving the optimal 5-chunk partition."""

from repro.experiments import fig4_partition


def test_fig4_five_chunk_partition(benchmark, save_report):
    result = benchmark.pedantic(
        fig4_partition.run_fig4, rounds=1, iterations=1
    )
    assert result.matches_paper
    assert result.conflict_free
    assert result.clique_bound == result.searched_m == 5
    save_report("fig4", fig4_partition.fig4_report(result))
