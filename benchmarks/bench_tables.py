"""Benchmarks for Tables I and II: model construction and the type split."""

from repro.experiments import tables


def test_table1_reaction_types(benchmark, save_report):
    rows = benchmark(tables.table1_rows)
    assert len(rows) == 7
    assert all(r.matches_paper() for r in rows)
    save_report("table1", tables.table1_report())


def test_table2_typesplit(benchmark, save_report):
    split = benchmark(tables.table2_split)
    assert split.n_subsets == 2
    save_report("table2", tables.table2_report())
