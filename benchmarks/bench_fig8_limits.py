"""Fig. 8 benchmark: L-PNDCA limit parameterisations vs RSM.

Runs the full oscillatory Pt(100) workload through RSM and the two
RSM-equivalent L-PNDCA limits (m=1/L=N and m=N/L=1) and checks the
statistical agreement of the coverage curves — the paper's Fig. 8
overlap claim.
"""

from repro.experiments import fig8_limits


def test_fig8_limit_equivalence(benchmark, save_report):
    result = benchmark.pedantic(fig8_limits.run_fig8, rounds=1, iterations=1)
    # both limits must track RSM within the RSM-vs-RSM null deviation
    assert result.limits_match, (
        result.null_rmse, result.single_rmse, result.singleton_rmse
    )
    # the reference RSM run oscillates (sanity of the workload)
    assert result.rsm.oscillation.amplitude > 0.1
    save_report("fig8", fig8_limits.fig8_report(result))
