"""Ablation benchmark: PNDCA chunk-selection strategies (section 5).

Compares the four chunk schedules (ordered / random-order / random /
weighted) on the oscillatory workload: accuracy (deviation from RSM)
against throughput (the weighted schedule pays an enabling scan per
draw).
"""

from repro.experiments import ablations


def test_pndca_strategy_ablation(benchmark, save_report):
    result = benchmark.pedantic(
        ablations.run_strategy_ablation, rounds=1, iterations=1
    )
    # all four schedules keep the dynamics in the oscillatory regime
    # and none drifts catastrophically from RSM
    for strategy, rmse in result.rmse.items():
        assert rmse < 4 * result.null_rmse, (strategy, rmse, result.null_rmse)
    # the weighted schedule pays for its enabling scans
    assert (
        result.trials_per_second["weighted"]
        < result.trials_per_second["random-order"]
    )
    save_report(
        "ablation_strategies", ablations.strategy_ablation_report(result)
    )
