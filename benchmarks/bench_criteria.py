"""Benchmark: the Segers correctness criteria (section 6).

RSM must satisfy both criteria (exponential waiting times, rate-ratio
type selection); the NDCA's once-per-site sweep must fail criterion 1
— the paper's stated reason CA methods deviate from the ME.
"""

from repro.ca import NDCA
from repro.dmc import RSM
from repro.experiments import criteria


def test_segers_criteria(benchmark, save_report):
    def run():
        return [
            criteria.run_criteria(RSM, until=400.0, seed=1),
            criteria.run_criteria(NDCA, until=400.0, seed=1),
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rsm, ndca = results
    assert rsm.criterion1_ok and rsm.criterion2_ok
    assert not ndca.criterion1_ok
    assert ndca.criterion2_ok  # the type *mix* stays right; timing doesn't
    save_report("criteria", criteria.criteria_report(results))
