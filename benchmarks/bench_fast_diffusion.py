"""Benchmark: the fast-diffusion accuracy claim (section 6, closing).

"If we consider very fast diffusion and small probabilities for
chemical reactions in the cells, the deviations are so small that DMC
and L-PNDCA give similar results" — verified on the pairing probe by
sweeping the diffusion rate and comparing the steady-state
nearest-neighbour correlation between RSM and the full-parallelisation
L-PNDCA configuration.
"""

from repro.experiments import fast_diffusion


def test_fast_diffusion_accuracy(benchmark, save_report):
    result = benchmark.pedantic(
        fast_diffusion.run_fast_diffusion, rounds=1, iterations=1
    )
    # diffusion mixes the pairing correlation away ...
    assert result.correlations_decay_with_diffusion
    # ... and with it the chunked algorithm's deviation from DMC
    assert result.deviation_shrinks
    save_report("fast_diffusion", fast_diffusion.fast_diffusion_report(result))
