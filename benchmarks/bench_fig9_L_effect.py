"""Fig. 9 benchmark: the effect of L with the five-chunk partition.

L=1 must track RSM (Fig. 9a); L=100 introduces correlations that show
up as extra deviation / a time shift of the oscillations (Fig. 9b).
"""

from repro.experiments import fig9_l_effect


def test_fig9_L_effect(benchmark, save_report):
    result = benchmark.pedantic(
        fig9_l_effect.run_fig9, kwargs=dict(Ls=(1, 100)), rounds=1, iterations=1
    )
    assert result.small_L_matches, (result.null_rmse, result.rmse_by_L)
    # both parameterisations keep the oscillations alive at this scale
    assert result.by_L[1].oscillation.oscillating
    # L=100 drifts at least as far from RSM as L=1 does beyond the
    # stochastic null (the Fig. 9b deviation); assert the weak ordering
    assert result.rmse_by_L[100] >= 0.8 * result.rmse_by_L[1]
    save_report("fig9", fig9_l_effect.fig9_report(result))
