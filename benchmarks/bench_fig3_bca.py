"""Fig. 3 benchmark: the 1-d Block CA with shifting 3-site blocks."""

from repro.experiments import fig3_bca


def test_fig3_block_ca(benchmark, save_report):
    result = benchmark(fig3_bca.run_fig3)
    assert result.history_bca[0].tolist() == [0, 0, 1, 1, 1, 1, 0, 0, 1]
    assert not result.history_bca[-1].any()  # zeros everywhere eventually
    save_report("fig3", fig3_bca.fig3_report(result))
