"""Fig. 10 benchmark: random chunk order at maximal L keeps oscillations.

The paper's closing result: visiting all five chunks exactly once per
step in random order with L = N/m (maximal work per chunk = full
parallelisation) still yields oscillatory behaviour.
"""

from repro.experiments import fig10_random_order


def test_fig10_random_order_keeps_oscillations(benchmark, save_report):
    result = benchmark.pedantic(
        fig10_random_order.run_fig10, rounds=1, iterations=1
    )
    assert result.rsm.oscillation.oscillating
    assert result.random_order_oscillates  # the paper's headline claim
    save_report("fig10", fig10_random_order.fig10_report(result))
