"""Ablation benchmark: sequential vs vectorised chunk kernels.

The vectorised conflict-free batch kernel is the package's
single-machine realisation of the paper's chunk parallelism; this
benchmark quantifies its advantage over the per-trial python loop and
verifies the two produce identical states.
"""

from repro.experiments import ablations


def test_kernel_ablation(benchmark, save_report):
    result = benchmark.pedantic(
        ablations.run_kernel_ablation, rounds=1, iterations=1
    )
    assert result.identical_states
    assert result.speedup > 2.0  # the data-parallel payoff
    save_report("ablation_kernels", ablations.kernel_ablation_report(result))


def test_rsm_trial_throughput(benchmark):
    """Raw sequential-kernel throughput on the Ziff model (trials/s)."""
    import numpy as np

    from repro.core import Lattice
    from repro.core.kernels import run_trials_sequential
    from repro.core.rng import draw_types, make_rng
    from repro.models import ziff_model

    model = ziff_model()
    lat = Lattice((100, 100))
    comp = model.compile(lat)
    rng = make_rng(0)
    state = rng.integers(0, 3, lat.n_sites).astype(np.uint8)
    n = 20000
    sites = rng.integers(0, lat.n_sites, n).astype(np.intp)
    types = draw_types(rng, comp.type_cum, n)

    def run():
        run_trials_sequential(state, comp, sites, types)

    benchmark(run)


def test_batch_kernel_throughput(benchmark):
    """Raw vectorised-kernel throughput on a five-chunk batch."""
    import numpy as np

    from repro.core import Lattice
    from repro.core.kernels import run_trials_batch
    from repro.core.rng import draw_types, make_rng
    from repro.models import ziff_model
    from repro.partition import five_chunk_partition

    model = ziff_model()
    lat = Lattice((100, 100))
    comp = model.compile(lat)
    p5 = five_chunk_partition(lat)
    rng = make_rng(0)
    state = rng.integers(0, 3, lat.n_sites).astype(np.uint8)
    chunk = p5.chunks[0]
    types = draw_types(rng, comp.type_cum, chunk.size)

    def run():
        run_trials_batch(state, comp, chunk, types)

    benchmark(run)
