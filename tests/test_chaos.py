"""Deterministic chaos: every claimed recovery path, exercised.

The scenarios here injure a run on purpose — SIGKILL a pool worker
mid-chunk, stall a slice past its deadline, corrupt a checkpoint file,
fail a checkpoint write — and assert that the run not only completes
but completes **bit-identically** to an undisturbed one.  Faults fire
on deterministic poll counts (never wall clock), so a red run here is
a reproducible bug, not flake.
"""

import numpy as np
import pytest

from repro.ca import PNDCA
from repro.core import Lattice
from repro.obs.metrics import MetricsCollector
from repro.obs.trace import Tracer
from repro.parallel.executor import ParallelChunkExecutor, ParallelPNDCA
from repro.partition import five_chunk_partition
from repro.resilience import (
    ChaosMonkey,
    CheckpointCorruptError,
    CheckpointPolicy,
    Checkpointer,
    FaultSpec,
    checkpoint_paths,
    last_good_checkpoint,
    load_checkpoint,
)

UNTIL = 1.0


@pytest.fixture
def setup(ziff):
    lat = Lattice((10, 10))
    p5 = five_chunk_partition(lat)
    p5.validate_conflict_free(ziff)
    return lat, p5


def _serial_reference(ziff, lat, p5):
    return PNDCA(ziff, lat, seed=42, partition=p5, strategy="ordered").run(
        until=UNTIL
    )


class TestChaosMonkey:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("set-on-fire")

    def test_at_validation(self):
        with pytest.raises(ValueError, match="at must be"):
            FaultSpec("kill-worker", at=0)

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="corruption mode"):
            FaultSpec("corrupt-checkpoint", mode="shred")

    def test_fires_on_exact_poll_count(self):
        monkey = ChaosMonkey(faults=[FaultSpec("kill-worker", at=3)])
        assert monkey.poll("chunk") is None
        assert monkey.poll("chunk") is None
        spec = monkey.poll("chunk")
        assert spec is not None and spec.kind == "kill-worker"
        assert monkey.poll("chunk") is None  # each spec fires once
        assert monkey.fired == [("kill-worker", "chunk", 3)]
        assert monkey.exhausted

    def test_channels_are_independent(self):
        monkey = ChaosMonkey(
            faults=[
                FaultSpec("kill-worker", at=1),
                FaultSpec("fail-emit", at=1),
            ]
        )
        assert monkey.poll("emit").kind == "fail-emit"
        assert monkey.poll("chunk").kind == "kill-worker"

    def test_corruption_is_seed_deterministic(self, tmp_path):
        blob = bytes(range(256)) * 4
        out = []
        for _ in range(2):
            f = tmp_path / "f.bin"
            f.write_bytes(blob)
            ChaosMonkey(seed=7).corrupt_file(f, mode="flip")
            out.append(f.read_bytes())
        assert out[0] == out[1] != blob

    def test_truncate_leaves_nonempty_prefix(self, tmp_path):
        f = tmp_path / "f.bin"
        f.write_bytes(b"x" * 100)
        ChaosMonkey(seed=3).corrupt_file(f, mode="truncate")
        assert 0 < f.stat().st_size < 100


class TestExecutorRecovery:
    """The recovery ladder: retry -> respawn -> serial fallback."""

    def test_kill_worker_mid_chunk_recovers_bit_identical(self, ziff, setup):
        lat, p5 = setup
        ref = _serial_reference(ziff, lat, p5)
        monkey = ChaosMonkey(faults=[FaultSpec("kill-worker", at=3)])
        m = MetricsCollector()
        tracer = Tracer()
        with ParallelChunkExecutor(
            ziff, lat, n_workers=2, chunk_timeout=1.0,
            metrics=m, tracer=tracer, chaos=monkey,
        ) as ex:
            sim = ParallelPNDCA(
                ziff, lat, seed=42, partition=p5, strategy="ordered",
                executor=ex,
            )
            res = sim.run(until=UNTIL)
        assert monkey.fired == [("kill-worker", "chunk", 3)]
        # the run completed with correct (bit-identical) results
        assert np.array_equal(ref.final_state.array, res.final_state.array)
        assert ref.final_time == res.final_time
        assert np.array_equal(ref.executed_per_type, res.executed_per_type)
        assert not ex.degraded  # one retry was enough
        snap = m.snapshot()
        assert snap.counter("executor.retries") >= 1
        assert snap.counter("executor.respawns") >= 1
        kinds = [e[3]["recovery"] for e in tracer.events if e[0] == "recovery"]
        assert "chunk-retry" in kinds

    def test_delay_slice_past_deadline_recovers(self, ziff, setup):
        lat, p5 = setup
        ref = _serial_reference(ziff, lat, p5)
        monkey = ChaosMonkey(
            faults=[FaultSpec("delay-slice", at=2, delay=2.0)]
        )
        m = MetricsCollector()
        with ParallelChunkExecutor(
            ziff, lat, n_workers=2, chunk_timeout=0.3,
            metrics=m, chaos=monkey,
        ) as ex:
            sim = ParallelPNDCA(
                ziff, lat, seed=42, partition=p5, strategy="ordered",
                executor=ex,
            )
            res = sim.run(until=UNTIL)
        assert monkey.exhausted
        assert np.array_equal(ref.final_state.array, res.final_state.array)
        assert m.snapshot().counter("executor.retries") >= 1

    def test_exhausted_retries_degrade_to_serial(self, ziff, setup):
        lat, p5 = setup
        ref = _serial_reference(ziff, lat, p5)
        monkey = ChaosMonkey(faults=[FaultSpec("kill-worker", at=1)])
        m = MetricsCollector()
        tracer = Tracer()
        with ParallelChunkExecutor(
            ziff, lat, n_workers=2, chunk_timeout=0.5, max_retries=0,
            metrics=m, tracer=tracer, chaos=monkey,
        ) as ex:
            sim = ParallelPNDCA(
                ziff, lat, seed=42, partition=p5, strategy="ordered",
                executor=ex,
            )
            res = sim.run(until=UNTIL)
            assert ex.degraded  # sticky for the executor's lifetime
        # graceful degradation: the whole run still completes, correct
        assert np.array_equal(ref.final_state.array, res.final_state.array)
        assert ref.final_time == res.final_time
        snap = m.snapshot()
        assert snap.counter("executor.degraded") == 1
        assert snap.counter("executor.serial_chunks") > 0
        kinds = [e[3]["recovery"] for e in tracer.events if e[0] == "recovery"]
        assert "serial-fallback" in kinds

    def test_no_timeout_keeps_bare_fast_path(self, ziff, setup):
        """Without a deadline (and without chaos) nothing is snapshotted."""
        lat, p5 = setup
        ref = _serial_reference(ziff, lat, p5)
        m = MetricsCollector()
        with ParallelChunkExecutor(ziff, lat, n_workers=2, metrics=m) as ex:
            sim = ParallelPNDCA(
                ziff, lat, seed=42, partition=p5, strategy="ordered",
                executor=ex,
            )
            res = sim.run(until=UNTIL)
        assert np.array_equal(ref.final_state.array, res.final_state.array)
        assert m.snapshot().counter("executor.retries", 0) == 0

    def test_parameter_validation(self, ziff, setup):
        lat, _ = setup
        with pytest.raises(ValueError, match="chunk_timeout"):
            ParallelChunkExecutor(ziff, lat, chunk_timeout=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            ParallelChunkExecutor(ziff, lat, max_retries=-1)


class TestCheckpointChaos:
    def test_corrupt_checkpoint_skipped_and_named(
        self, ziff, small_lattice, tmp_path
    ):
        from repro.dmc.rsm import RSM

        # corrupt the 2nd checkpoint right after it is written
        monkey = ChaosMonkey(
            seed=5, faults=[FaultSpec("corrupt-checkpoint", at=2, mode="flip")]
        )
        ck = Checkpointer(
            tmp_path, CheckpointPolicy(every_steps=1), chaos=monkey
        )
        RSM(ziff, small_lattice, seed=1, block=512).run(
            until=2.0, checkpoint=ck
        )
        assert monkey.exhausted
        paths = checkpoint_paths(tmp_path)
        corrupt = paths[1]
        with pytest.raises(CheckpointCorruptError) as err:
            load_checkpoint(corrupt)
        # the diagnostic names the operator's next move
        assert "last good checkpoint" in str(err.value)
        good = last_good_checkpoint(tmp_path)
        assert good is not None and good != corrupt
        # and the resume path transparently uses a good one
        resumed = RSM(ziff, small_lattice, seed=9, block=512).resume(good)
        assert resumed.n_trials > 0

    def test_truncated_checkpoint_detected(self, ziff, small_lattice, tmp_path):
        from repro.dmc.rsm import RSM

        monkey = ChaosMonkey(
            seed=5,
            faults=[FaultSpec("corrupt-checkpoint", at=1, mode="truncate")],
        )
        ck = Checkpointer(
            tmp_path, CheckpointPolicy(every_steps=1), chaos=monkey
        )
        RSM(ziff, small_lattice, seed=1, block=512).run(
            until=1.0, checkpoint=ck
        )
        corrupt = checkpoint_paths(tmp_path)[0]
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(corrupt)

    def test_fail_emit_counted_and_run_survives(
        self, ziff, small_lattice, tmp_path
    ):
        from repro.dmc.rsm import RSM

        monkey = ChaosMonkey(faults=[FaultSpec("fail-emit", at=1)])
        m = MetricsCollector()
        ck = Checkpointer(
            tmp_path, CheckpointPolicy(every_steps=1), metrics=m, chaos=monkey
        )
        res = RSM(ziff, small_lattice, seed=1, block=512).run(
            until=2.0, checkpoint=ck
        )
        # the run completed despite the failed write...
        assert res.final_time >= 2.0
        snap = m.snapshot()
        assert snap.counter("checkpoint.write_errors") == 1
        # ...and later checkpoints still landed
        assert snap.counter("checkpoint.writes") >= 1
        assert len(checkpoint_paths(tmp_path)) >= 1


class TestEndToEnd:
    def test_chaos_run_resumes_bit_identical(self, ziff, setup, tmp_path):
        """Checkpointing and worker-kill chaos composed in one run."""
        lat, p5 = setup
        ref = _serial_reference(ziff, lat, p5)
        monkey = ChaosMonkey(faults=[FaultSpec("kill-worker", at=2)])
        ck = Checkpointer(tmp_path, CheckpointPolicy(every_steps=1))
        with ParallelChunkExecutor(
            ziff, lat, n_workers=2, chunk_timeout=1.0, chaos=monkey
        ) as ex:
            sim = ParallelPNDCA(
                ziff, lat, seed=42, partition=p5, strategy="ordered",
                executor=ex,
            )
            res = sim.run(until=UNTIL, checkpoint=ck)
        assert monkey.exhausted
        assert np.array_equal(ref.final_state.array, res.final_state.array)
        # the survivor's checkpoints resume into a fresh executor-backed
        # engine bit-identically (randoms are master-drawn either way)
        paths = checkpoint_paths(tmp_path)
        assert paths
        mid = paths[len(paths) // 2]
        with ParallelChunkExecutor(ziff, lat, n_workers=2) as ex2:
            resumed = ParallelPNDCA(
                ziff, lat, seed=0, partition=p5, strategy="ordered",
                executor=ex2,
            ).resume(mid)
            out = resumed.run(until=UNTIL)
        assert np.array_equal(ref.final_state.array, out.final_state.array)
        assert ref.final_time == out.final_time
