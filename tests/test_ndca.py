"""Unit tests for the NDCA."""

import numpy as np
import pytest

from repro.core import Lattice, Model, ReactionType
from repro.dmc import RSM
from repro.ca import NDCA


class TestSweep:
    def test_one_trial_per_site_per_step(self, ziff):
        lat = Lattice((8, 8))
        sim = NDCA(ziff, lat, seed=0)
        sim._step_block(until=np.inf)
        assert sim.n_trials == lat.n_sites

    def test_orders(self, ziff):
        for order in ("raster", "random"):
            sim = NDCA(ziff, Lattice((6, 6)), seed=0, order=order)
            res = sim.run(until=1.0)
            assert res.n_trials > 0

    def test_invalid_order(self, ziff):
        with pytest.raises(ValueError):
            NDCA(ziff, Lattice((6, 6)), order="spiral")

    def test_reproducible(self, ziff):
        lat = Lattice((8, 8))
        a = NDCA(ziff, lat, seed=5).run(until=3.0)
        b = NDCA(ziff, lat, seed=5).run(until=3.0)
        assert np.array_equal(a.final_state.array, b.final_state.array)

    def test_events_have_interpolated_times(self, ziff):
        sim = NDCA(ziff, Lattice((6, 6)), seed=1, record_events=True)
        res = sim.run(until=2.0)
        assert len(res.events) == res.n_executed
        assert (np.diff(res.events.times) >= 0).all()


class TestKinetics:
    def test_pure_adsorption_shows_documented_bias(self):
        # with ki/K = 1 every site executes every step: the NDCA fills
        # the lattice in one MC step, while RSM follows 1 - exp(-t).
        # this is exactly the site-selection bias of section 4.
        model = Model(
            ["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 1.0)]
        )
        lat = Lattice((30, 30))
        a = NDCA(model, lat, seed=0).run(until=1.2).final_state.coverage("A")
        b = RSM(model, lat, seed=0).run(until=1.2).final_state.coverage("A")
        assert a == pytest.approx(1.0)
        assert b == pytest.approx(1 - np.exp(-1.2), abs=0.05)
        assert a > b

    def test_diluted_adsorption_agrees_with_rsm(self):
        # when ki/K is small the per-step execution probability
        # approximates the exponential thinning and NDCA tracks the ME
        model = Model(
            ["*", "A"],
            [
                ReactionType("ads", [((0, 0), "*", "A")], 1.0),
                ReactionType("tick", [((0, 0), "*", "*")], 9.0),
            ],
        )
        lat = Lattice((30, 30))
        a = NDCA(model, lat, seed=0).run(until=1.5).final_state.coverage("A")
        assert a == pytest.approx(1 - np.exp(-1.5), abs=0.05)

    def test_raster_sweep_advects_1d_diffusion(self):
        # the documented NDCA artefact: a raster sweep drags particles
        # along the sweep direction (hop chains within one step)
        from repro.models import equally_spaced, single_file_model, tracer_displacements

        model = single_file_model()
        lat = Lattice((64,))
        initial = equally_spaced(lat, model, 16)
        sim = NDCA(model, lat, seed=0, order="raster", initial=initial, record_events=True)
        sim.run(until=10.0)
        disp = tracer_displacements(initial, sim.trace, model)
        rsm = RSM(model, lat, seed=0, initial=initial, record_events=True)
        rsm.run(until=10.0)
        disp_rsm = tracer_displacements(initial, rsm.trace, model)
        assert np.mean(disp.astype(float) ** 2) > 3 * np.mean(
            disp_rsm.astype(float) ** 2
        )
