"""Additional property-based tests: builder, conservation, correlations.

These close the loop between the generative machinery (random models
built with the DSL) and the analytic machinery (conservation laws
derived from stoichiometry must hold along every simulated
trajectory, for every simulator).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Lattice, ModelBuilder
from repro.core.conservation import (
    conserved_quantities,
    is_conserved,
    stoichiometry_matrix,
)
from repro.core.reaction import ORIENTATIONS_4, rotate_offset

# ----------------------------------------------------------------------
# random models via the builder
# ----------------------------------------------------------------------

rates = st.floats(0.1, 5.0)


@st.composite
def random_models(draw):
    """A random 3-species model with a random mix of process kinds."""
    b = ModelBuilder("random", species=("*", "A", "B"))
    n_procs = draw(st.integers(1, 5))
    added = 0
    added = 0
    for i in range(n_procs):
        kind = draw(st.sampled_from(
            ["ads", "des", "diss", "pair", "hop", "flip"]
        ))
        k = draw(rates)
        sp = draw(st.sampled_from(["A", "B"]))
        other = "B" if sp == "A" else "A"
        name = f"{kind}{i}"
        if kind == "ads":
            b.adsorption(name, sp, k)
        elif kind == "des":
            b.desorption(name, sp, k)
        elif kind == "diss":
            b.dissociative_adsorption(name, sp, k)
        elif kind == "pair":
            b.pair_reaction(name, sp, other, k)
        elif kind == "hop":
            b.hop(name, sp, k)
        else:
            b.transformation(name, sp, other, k)
        added += 1
    return b.build()


class TestBuilderProperties:
    @given(model=random_models())
    @settings(max_examples=30, deadline=None)
    def test_every_built_model_is_valid(self, model):
        assert model.n_types >= 1
        assert model.total_rate > 0
        # every reaction type anchors at the origin
        for rt in model.reaction_types:
            assert (0, 0) in rt.neighborhood

    @given(model=random_models())
    @settings(max_examples=20, deadline=None)
    def test_total_sites_always_conserved(self, model):
        ones = {name: 1 for name in model.species.names}
        assert is_conserved(model, ones)

    @given(model=random_models(), seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_derived_laws_hold_on_trajectories(self, model, seed):
        """Every conserved quantity found from stoichiometry stays
        constant along an actual RSM trajectory."""
        from repro.dmc import RSM, SnapshotObserver
        from repro.core.conservation import check_trajectory_conservation

        lat = Lattice((6, 6))
        obs = SnapshotObserver(0.5)
        sim = RSM(model, lat, seed=seed, observers=[obs])
        sim.run(until=2.0)
        snaps = list(obs.data()["snapshots"])
        for law in conserved_quantities(model):
            assert check_trajectory_conservation(model, snaps, law), law


class TestRotationProperties:
    @given(
        x=st.integers(-5, 5),
        y=st.integers(-5, 5),
        d=st.sampled_from(ORIENTATIONS_4),
    )
    @settings(max_examples=60, deadline=None)
    def test_rotation_preserves_norm(self, x, y, d):
        rx, ry = rotate_offset((x, y), d)
        assert rx * rx + ry * ry == x * x + y * y

    @given(x=st.integers(-5, 5), y=st.integers(-5, 5))
    @settings(max_examples=30, deadline=None)
    def test_four_rotations_return_home(self, x, y):
        v = (x, y)
        for _ in range(4):
            v = rotate_offset(v, (0, 1))
        assert v == (x, y)

    @given(x=st.integers(-5, 5), y=st.integers(-5, 5))
    @settings(max_examples=30, deadline=None)
    def test_opposite_rotations_cancel(self, x, y):
        v = rotate_offset((x, y), (0, 1))
        assert rotate_offset(v, (0, -1)) == (x, y)


class TestStoichiometryProperties:
    @given(model=random_models())
    @settings(max_examples=20, deadline=None)
    def test_stoichiometry_rows_sum_to_zero(self, model):
        # a reaction rewrites sites: total site count change is zero
        s = stoichiometry_matrix(model)
        assert (s.sum(axis=1) == 0).all()

    @given(model=random_models())
    @settings(max_examples=20, deadline=None)
    def test_nullspace_vectors_annihilate_matrix(self, model):
        s = stoichiometry_matrix(model)
        for law in conserved_quantities(model):
            c = np.array([law[name] for name in model.species.names])
            assert not (s @ c).any()


class TestCorrelationProperties:
    @given(seed=st.integers(0, 2**31), rho=st.floats(0.3, 0.7))
    @settings(max_examples=20, deadline=None)
    def test_random_config_pair_correlation_near_one(self, seed, rho):
        from repro.analysis import pair_correlation
        from repro.core import Configuration
        from repro.core.species import SpeciesRegistry

        sp = SpeciesRegistry(["*", "A"]).freeze()
        lat = Lattice((50, 50))
        rng = np.random.default_rng(seed)
        cfg = Configuration.random(lat, sp, {"A": rho}, rng)
        g = pair_correlation(cfg, "A", "A", (1, 0))
        # sampling error of g at these densities is well below 0.2
        assert np.isfinite(g)
        assert g == pytest.approx(1.0, abs=0.2)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_pair_correlation_symmetric_in_displacement(self, seed):
        from repro.analysis import pair_correlation
        from repro.core import Configuration
        from repro.core.species import SpeciesRegistry

        sp = SpeciesRegistry(["*", "A"]).freeze()
        lat = Lattice((12, 12))
        rng = np.random.default_rng(seed)
        cfg = Configuration.random(lat, sp, {"A": 0.5}, rng)
        g1 = pair_correlation(cfg, "A", "A", (1, 0))
        g2 = pair_correlation(cfg, "A", "A", (-1, 0))
        # same-species correlation is displacement-reversal symmetric
        assert g1 == pytest.approx(g2)
