"""Tests for the experiment drivers (cheap parameterisations)."""

import numpy as np

from repro.experiments import (
    criteria,
    fig2_conflicts,
    fig3_bca,
    fig4_partition,
    fig6_typepart,
    fig7_speedup,
    ndca_bias,
    phase_diagram,
    tables,
)


class TestTables:
    def test_table1_matches_paper(self):
        rows = tables.table1_rows()
        assert len(rows) == 7
        assert all(r.matches_paper() for r in rows)

    def test_table1_report_all_ok(self):
        rep = tables.table1_report()
        assert "MISMATCH" not in rep
        assert "{(s,*,CO)}" in rep

    def test_table2_matches_paper(self):
        split = tables.table2_split()
        model = split.model
        for s in split.subsets:
            names = {model.reaction_types[i].name for i in s.type_indices}
            assert names == tables.PAPER_TABLE2[f"T{s.index}"]

    def test_table2_report_all_ok(self):
        assert "MISMATCH" not in tables.table2_report()


class TestFig2:
    def test_unsafe_violates_discard_conserves(self):
        points = fig2_conflicts.run_fig2(densities=(0.4,), side=16, steps=20)
        p = points[0]
        assert p.discard_conserves
        assert p.unsafe_violates
        assert 0 < p.conflict_rate < 1

    def test_report_renders(self):
        points = fig2_conflicts.run_fig2(densities=(0.3,), side=12, steps=10)
        assert "conflict" in fig2_conflicts.fig2_report(points)


class TestFig3:
    def test_bca_history_matches_paper_rows(self):
        r = fig3_bca.run_fig3(n_steps=4)
        assert r.history_bca[0].tolist() == [0, 0, 1, 1, 1, 1, 0, 0, 1]
        assert r.history_bca[1].tolist() == [0, 0, 0, 1, 1, 0, 0, 0, 0]

    def test_bca_slower_than_global(self):
        r = fig3_bca.run_fig3()
        assert r.steps_to_fixpoint_bca >= r.steps_to_fixpoint_global

    def test_report(self):
        assert "Block CA" in fig3_bca.fig3_report()


class TestFig4:
    def test_matches_paper_tile(self):
        r = fig4_partition.run_fig4()
        assert r.matches_paper
        assert r.conflict_free
        assert r.clique_bound == 5
        assert r.searched_m == 5

    def test_report(self):
        assert "optimal" in fig4_partition.fig4_report()


class TestFig6:
    def test_checkerboard_serves_each_subset(self):
        r = fig6_typepart.run_fig6(side=10, until=2.0)
        assert r.checkerboard_valid
        assert r.chunks_per_subset == 2
        assert r.chunks_all_types == 5
        assert len(r.subsets) == 2


class TestFig7:
    def test_surface_shape_without_calibration(self):
        r = fig7_speedup.run_fig7(calibrate=False, verify_executor=False)
        assert r.surface.shape == (9, 9)
        assert 6.5 <= r.max_speedup <= 8.5

    def test_report_without_calibration(self):
        r = fig7_speedup.run_fig7(calibrate=False, verify_executor=False)
        rep = fig7_speedup.fig7_report(r)
        assert "T(1,N)/T(p,N)" in rep


class TestCriteria:
    def test_rsm_passes_both_criteria(self):
        r = criteria.run_criteria(until=200.0, seed=1)
        assert r.criterion1_ok, r.p_values
        assert r.criterion2_ok

    def test_ndca_fails_criterion1(self):
        from repro.ca import NDCA

        r = criteria.run_criteria(NDCA, until=200.0, seed=1)
        assert not r.criterion1_ok  # quantised waiting times

    def test_tick_model_is_static(self):
        m = criteria.tick_model()
        assert all(rt.is_null() for rt in m.reaction_types)


class TestPhaseDiagram:
    def test_poisoning_extremes(self):
        # far below y1: O-poisons; far above y2: CO-poisons
        d = phase_diagram.run_phase_diagram(
            ys=np.array([0.30, 0.60]), side=20, until=60.0, rsm_check_ys=()
        )
        assert d.points[0].poisoned == "O"
        assert d.points[1].poisoned == "CO"

    def test_reactive_window(self):
        d = phase_diagram.run_phase_diagram(
            ys=np.array([0.50]), side=20, until=60.0, rsm_check_ys=()
        )
        assert d.points[0].poisoned == "-"
        assert d.points[0].theta_empty > 0.1


class TestFastDiffusion:
    def test_pairing_model_correlates_without_diffusion(self):
        from repro.analysis import pair_correlation
        from repro.core import Lattice
        from repro.dmc import RSM
        from repro.experiments.fast_diffusion import pairing_model

        m = pairing_model(k_diff=0.1)
        res = RSM(m, Lattice((30, 30)), seed=0).run(until=15.0)
        g = pair_correlation(res.final_state, "O", "O", (1, 0))
        assert g > 1.5  # strong non-equilibrium pairing

    def test_small_sweep_runs(self):
        from repro.experiments.fast_diffusion import run_fast_diffusion

        r = run_fast_diffusion(
            k_diffs=(0.1, 8.0), side=20, until=10.0, n_seeds=2
        )
        assert set(r.g_rsm) == {0.1, 8.0}
        assert all(np.isfinite(v) for v in r.g_rsm.values())


class TestNdcaBias:
    def test_single_file_bias_direction(self):
        r = ndca_bias.run_ndca_bias(
            side=10, ising_until=5.0, sf_length=48, sf_particles=24,
            sf_until=20.0, seeds=(0, 1),
        )
        # the raster sweep advects particles: much larger tracer MSD
        assert r.sf_msd_ndca > r.sf_msd_rsm
