"""Unit tests for repro.core.lattice."""

import numpy as np
import pytest

from repro.core.lattice import Lattice


class TestConstruction:
    def test_2d(self):
        lat = Lattice((3, 4))
        assert lat.shape == (3, 4)
        assert lat.ndim == 2
        assert lat.n_sites == 12

    def test_1d(self):
        lat = Lattice((7,))
        assert lat.ndim == 1
        assert lat.n_sites == 7

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="1-d and 2-d"):
            Lattice((2, 2, 2))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Lattice((0, 5))
        with pytest.raises(ValueError):
            Lattice((-3,))

    def test_equality_and_hash(self):
        assert Lattice((3, 4)) == Lattice((3, 4))
        assert Lattice((3, 4)) != Lattice((4, 3))
        assert hash(Lattice((3, 4))) == hash(Lattice((3, 4)))

    def test_repr(self):
        assert "3, 4" in repr(Lattice((3, 4)))


class TestCoordinates:
    def test_flat_index_row_major(self):
        lat = Lattice((3, 4))
        assert lat.flat_index((0, 0)) == 0
        assert lat.flat_index((0, 3)) == 3
        assert lat.flat_index((1, 0)) == 4
        assert lat.flat_index((2, 3)) == 11

    def test_flat_index_wraps(self):
        lat = Lattice((3, 4))
        assert lat.flat_index((3, 0)) == lat.flat_index((0, 0))
        assert lat.flat_index((-1, -1)) == lat.flat_index((2, 3))

    def test_coords_roundtrip(self):
        lat = Lattice((3, 4))
        for flat in range(lat.n_sites):
            assert lat.flat_index(lat.coords(flat)) == flat

    def test_coords_out_of_range(self):
        lat = Lattice((3, 4))
        with pytest.raises(IndexError):
            lat.coords(12)
        with pytest.raises(IndexError):
            lat.coords(-1)

    def test_wrap(self):
        lat = Lattice((3, 4))
        assert lat.wrap((3, -1)) == (0, 3)
        assert lat.wrap((5, 9)) == (2, 1)

    def test_wrap_dimension_check(self):
        with pytest.raises(ValueError):
            Lattice((3, 4)).wrap((1,))

    def test_sites_enumeration(self):
        lat = Lattice((2, 3))
        sites = list(lat.sites())
        assert len(sites) == 6
        assert sites[0] == (0, 0)
        assert sites[-1] == (1, 2)


class TestNeighborMaps:
    def test_identity(self):
        lat = Lattice((4, 4))
        m = lat.neighbor_map((0, 0))
        assert np.array_equal(m, np.arange(16))

    def test_east(self):
        lat = Lattice((2, 3))
        m = lat.neighbor_map((0, 1))
        # site (0, 2) + (0, 1) -> (0, 0)
        assert m[lat.flat_index((0, 2))] == lat.flat_index((0, 0))
        assert m[lat.flat_index((0, 0))] == lat.flat_index((0, 1))

    def test_is_permutation(self):
        lat = Lattice((5, 7))
        for off in [(1, 0), (0, -1), (2, 3), (-4, 6)]:
            m = lat.neighbor_map(off)
            assert np.array_equal(np.sort(m), np.arange(lat.n_sites))

    def test_cached_and_readonly(self):
        lat = Lattice((4, 4))
        m1 = lat.neighbor_map((1, 0))
        m2 = lat.neighbor_map((1, 0))
        assert m1 is m2
        with pytest.raises(ValueError):
            m1[0] = 5

    def test_inverse_offsets_compose_to_identity(self):
        lat = Lattice((6, 5))
        fwd = lat.neighbor_map((1, 2))
        back = lat.neighbor_map((-1, -2))
        assert np.array_equal(back[fwd], np.arange(lat.n_sites))

    def test_1d_map(self):
        lat = Lattice((5,))
        m = lat.neighbor_map((1,))
        assert m[4] == 0
        assert m[0] == 1

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Lattice((4, 4)).neighbor_map((1,))

    def test_shift_flat(self):
        lat = Lattice((3, 3))
        sites = np.array([0, 4, 8])
        shifted = lat.shift_flat(sites, (0, 1))
        expected = [lat.flat_index((0, 1)), lat.flat_index((1, 2)), lat.flat_index((2, 0))]
        assert shifted.tolist() == expected


class TestGeometryHelpers:
    def test_displacement_minimal_image(self):
        lat = Lattice((10, 10))
        assert lat.displacement((0, 0), (0, 9)) == (0, -1)
        assert lat.displacement((9, 9), (0, 0)) == (1, 1)
        assert lat.displacement((2, 2), (2, 2)) == (0, 0)

    def test_all_flat_is_writable_copy(self):
        lat = Lattice((3, 3))
        a = lat.all_flat()
        a[0] = 99
        assert lat.all_flat()[0] == 0

    def test_as_grid_shape_and_view(self):
        lat = Lattice((3, 4))
        flat = np.arange(12)
        grid = lat.as_grid(flat)
        assert grid.shape == (3, 4)
        grid[0, 0] = 99
        assert flat[0] == 99  # a view, not a copy

    def test_as_grid_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Lattice((3, 4)).as_grid(np.arange(11))
