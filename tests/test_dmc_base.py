"""Tests for SimulatorBase internals (time accounting, defaults)."""

import numpy as np
import pytest

from repro.core import Configuration, Lattice, Model, ReactionType
from repro.dmc import RSM


@pytest.fixture
def sim(ziff):
    return RSM(ziff, Lattice((10, 10)), seed=0)


class TestTimeIncrement:
    def test_deterministic_value(self, ziff):
        sim = RSM(ziff, Lattice((10, 10)), seed=0, time_mode="deterministic")
        nk = 100 * ziff.total_rate
        assert sim.time_increment(50) == pytest.approx(50 / nk)

    def test_zero_trials(self, sim):
        assert sim.time_increment(0) == 0.0

    def test_stochastic_mean(self, ziff):
        sim = RSM(ziff, Lattice((10, 10)), seed=0)
        nk = sim.nk_rate
        draws = np.array([sim.time_increment(100) for _ in range(2000)])
        # Gamma(100, 1/nk): mean 100/nk, std 10/nk
        assert draws.mean() == pytest.approx(100 / nk, rel=0.02)
        assert draws.std() == pytest.approx(10 / nk, rel=0.1)

    def test_gamma_equals_sum_of_exponentials_in_distribution(self, ziff):
        sim = RSM(ziff, Lattice((10, 10)), seed=1)
        rng = np.random.default_rng(2)
        gamma_draws = np.array([sim.time_increment(30) for _ in range(3000)])
        exp_sums = rng.exponential(1.0 / sim.nk_rate, size=(3000, 30)).sum(axis=1)
        from scipy import stats

        _, p = stats.ks_2samp(gamma_draws, exp_sums)
        assert p > 0.01


class TestDefaults:
    def test_default_initial_empty_when_star_exists(self, ziff):
        sim = RSM(ziff, Lattice((6, 6)))
        assert sim.state.coverage("*") == 1.0

    def test_default_initial_first_species_otherwise(self):
        m = Model(
            ["A", "B"],
            [ReactionType("f", [((0, 0), "A", "B")], 1.0)],
        )
        sim = RSM(m, Lattice((6, 6)))
        assert sim.state.coverage("A") == 1.0

    def test_seed_recorded_for_ints(self, ziff):
        assert RSM(ziff, Lattice((4, 4)), seed=7).seed == 7
        assert RSM(ziff, Lattice((4, 4)), seed=None).seed is None

    def test_nk_rate(self, ziff):
        sim = RSM(ziff, Lattice((10, 10)))
        assert sim.nk_rate == pytest.approx(100 * ziff.total_rate)

    def test_initial_copied_not_aliased(self, ziff):
        lat = Lattice((6, 6))
        initial = Configuration.empty(lat, ziff.species)
        sim = RSM(ziff, lat, seed=0, initial=initial)
        sim.run(until=1.0)
        assert initial.coverage("*") == 1.0  # caller's state untouched
