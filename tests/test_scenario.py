"""Tests for the declarative scenario DSL (:mod:`repro.scenario`).

Loader error paths (fail-closed: distinct message, CLI exit code 2, no
traceback), content-digest stability, the zoo registry, the acceptance
gates, and the ZGB bit-identity contract — the inline TOML reaction
list compiles to an engine digest-identical to the Python-constructed
driver.
"""

import re

import pytest

from repro.__main__ import main
from repro.lint.engine import LintError
from repro.scenario import (
    ScenarioError,
    build_engine,
    find_scenario,
    get_scenario,
    is_scenario_ref,
    lint_scenario,
    loads_scenario,
    provenance,
    run_gates,
    run_scenario,
    scenario_names,
)

BASE = """\
[scenario]
name = "t"

[model]
species = ["*", "A", "B"]

[[model.reactions]]
name = "A_ads"
type = "adsorption"
species = "A"
rate = 0.4

[[model.reactions]]
name = "B2_ads"
type = "dissociative_adsorption"
species = "B"
rate = 0.3

[[model.reactions]]
name = "A+B"
type = "pair_reaction"
a = "A"
b = "B"
rate = 2.0

[lattice]
shape = [6, 6]

[engine]
kind = "rsm"

[run]
seed = 0
until = 1.0
"""


def edited(old: str, new: str) -> str:
    assert old in BASE
    return BASE.replace(old, new)


class TestLoader:
    def test_valid_document(self):
        spec = loads_scenario(BASE)
        assert spec.name == "t"
        assert spec.model.species == ("*", "A", "B")
        assert [r.name for r in spec.model.reactions] == ["A_ads", "B2_ads", "A+B"]
        assert spec.lattice_shape == (6, 6)
        assert spec.engine.kind == "rsm"
        assert spec.run.seed == 0 and spec.run.until == 1.0

    def test_digest_shape(self):
        spec = loads_scenario(BASE)
        assert re.fullmatch(r"[0-9a-f]{64}", spec.digest())
        assert spec.short_digest() == spec.digest()[:16]

    def test_compiles_and_runs(self):
        engine = build_engine(loads_scenario(BASE))
        engine.run(until=0.5)
        assert engine.time > 0


# each row: (broken document, fragment its distinct error must contain)
BAD_DOCS = [
    # --- unknown keys, at every level ---------------------------------
    (BASE + "\n[mystery]\nx = 1\n", "unknown key(s) ['mystery']"),
    (edited('name = "t"', 'name = "t"\ncolour = "red"'), "scenario: unknown key(s) ['colour']"),
    (edited('species = ["*", "A", "B"]', 'species = ["*", "A", "B"]\nflavour = 3'),
     "model: unknown key(s) ['flavour']"),
    (edited('rate = 0.4', 'rate = 0.4\nsticky = true'),
     "model.reactions[0] ('A_ads'): unknown key(s) ['sticky']"),
    (edited('kind = "rsm"', 'kind = "rsm"\nwarp = 9'), "engine: unknown key(s) ['warp']"),
    (edited('until = 1.0', 'until = 1.0\nfast = true'), "run: unknown key(s) ['fast']"),
    # --- rates --------------------------------------------------------
    (edited("rate = 0.4", "rate = -0.4"), "rate must be strictly positive, got -0.4"),
    (edited("rate = 0.4", "rate = 0.0"), "rate must be strictly positive, got 0"),
    (edited("rate = 0.4", "rate = inf"), "rate must be finite"),
    (edited("rate = 0.4", 'rate = "fast"'), "rate must be a number, got str"),
    # --- species discipline -------------------------------------------
    (edited('species = "A"\nrate = 0.4', 'species = "X"\nrate = 0.4'),
     "species 'X' is not declared in model.species"),
    (edited('a = "A"', 'a = "CO"'), "species 'CO' is not declared"),
    (edited('species = ["*", "A", "B"]', 'species = ["*", "A", "A"]'),
     "duplicate species"),
    # --- reaction shape -----------------------------------------------
    (edited('type = "adsorption"', 'type = "teleport"'), "unknown reaction type 'teleport'"),
    (edited('name = "A_ads"\ntype = "adsorption"\nspecies = "A"\nrate = 0.4',
            'name = "A_ads"\ntype = "adsorption"\nrate = 0.4'),
     "missing required key 'species'"),
    (edited('name = "B2_ads"', 'name = "A_ads"'), "duplicate reaction names ['A_ads']"),
    # --- engine/kind consistency --------------------------------------
    (edited('kind = "rsm"', 'kind = "warp-drive"'), "unknown engine 'warp-drive'"),
    (edited('kind = "rsm"', 'kind = "rsm"\npartition = "five-chunk"'),
     "engine kind 'rsm' takes no partition"),
    (edited('kind = "rsm"', 'kind = "pndca"'), "engine kind 'pndca' needs a partition"),
    (edited('kind = "rsm"', 'kind = "ensemble-rsm"'),
     "engine.n_replicas: required for ensemble kind"),
    (edited('kind = "rsm"', 'kind = "rsm"\nL = 4'), "only the 'lpndca' engine"),
    # --- lattice ------------------------------------------------------
    (edited("shape = [6, 6]", "shape = [6, 0]"), "sides must be positive integers"),
    (edited("shape = [6, 6]", "shape = [6]"), "does not match the model dimensionality"),
    # --- run ----------------------------------------------------------
    (edited("until = 1.0", "until = -2.0"), "run.until: must be positive"),
    (edited("until = 1.0", 'until = 1.0\ninitial = "Q"'),
     "run.initial: species 'Q' is not declared"),
    # --- sweep grids --------------------------------------------------
    (BASE + "\n[sweep]\n", "sweep: declared but empty"),
    (BASE + "\n[sweep]\nseed = 3\n", "sweep.seed: expected a non-empty list"),
    (BASE + "\n[sweep]\nseed = [1, 2.5]\n", "sweep.seed: expected a list of integers"),
    (BASE + "\n[sweep]\nuntil = [1.0, -1.0]\n", "sweep.until: horizons must be positive"),
    (BASE + "\n[sweep.rates]\nX_ads = [0.1]\n", "'X_ads' names no declared reaction"),
    (BASE + "\n[sweep.rates]\nA_ads = [0.1, -0.2]\n", "must be strictly positive"),
    (BASE + "\n[sweep.params]\ny = [0.5]\n", "only preset models take parameter sweeps"),
    # --- gates --------------------------------------------------------
    (BASE + '\n[gates.fingerprint]\ndigest = "xyz"\n', "expected 16 lowercase hex digits"),
    (BASE + "\n[gates]\nmass_dt = 0.0\n", "gates.mass_dt: must be a positive number"),
    (BASE + "\n[gates]\nvibes = 1\n", "gates: unknown key(s) ['vibes']"),
    # --- document shape -----------------------------------------------
    ("this is not TOML [", "not valid TOML"),
    ("[scenario]\nname = \"t\"\n", "missing required table [model]"),
]


class TestLoaderErrors:
    """Every malformed document is refused with its own message."""

    @pytest.mark.parametrize(
        "text,fragment", BAD_DOCS, ids=[frag[:40] for _, frag in BAD_DOCS]
    )
    def test_rejected_with_distinct_message(self, text, fragment):
        with pytest.raises(ScenarioError) as excinfo:
            loads_scenario(text)
        assert fragment in str(excinfo.value)

    def test_messages_are_pairwise_distinct(self):
        messages = set()
        for text, _ in BAD_DOCS:
            with pytest.raises(ScenarioError) as excinfo:
                loads_scenario(text)
            messages.add(str(excinfo.value))
        assert len(messages) == len(BAD_DOCS)

    def test_probability_mass_over_1_is_refused(self):
        # total rate: 0.4 + 4*0.3 + 4*2.0 = large; dt = 1.0 pushes the
        # per-site selection mass over 1 -> SR010 fires in the preflight
        spec = loads_scenario(BASE + "\n[gates]\nmass_dt = 1.0\n")
        with pytest.raises(LintError) as excinfo:
            lint_scenario(spec)
        assert "SR010" in str(excinfo.value)
        assert "probability mass" in str(excinfo.value)

    def test_admissible_mass_dt_passes(self):
        spec = loads_scenario(BASE + "\n[gates]\nmass_dt = 0.01\n")
        assert lint_scenario(spec).ok()


class TestDigest:
    def test_stable_under_comments_and_formatting(self):
        a = loads_scenario(BASE)
        b = loads_scenario("# a comment\n" + BASE.replace("shape = [6, 6]", "shape = [ 6,6 ]"))
        assert a.digest() == b.digest()

    def test_changed_by_semantic_edits(self):
        base = loads_scenario(BASE).digest()
        assert loads_scenario(edited("rate = 0.4", "rate = 0.5")).digest() != base
        assert loads_scenario(edited("shape = [6, 6]", "shape = [8, 8]")).digest() != base
        assert loads_scenario(edited("seed = 0", "seed = 1")).digest() != base

    def test_provenance_carries_cache_key(self):
        spec = loads_scenario(BASE)
        prov = provenance(spec, seed=7, params={"y": 0.5})
        assert prov["digest"] == spec.digest()
        assert prov["seed"] == 7 and prov["params"] == {"y": 0.5}
        assert prov["name"] == "t" and prov["source"] == "<inline>"


class TestRegistry:
    ZOO = ["ab2-desorption", "dimer-dimer", "no-co", "pt100-oscillatory", "zgb"]

    def test_zoo_contents(self):
        assert scenario_names() == self.ZOO

    def test_lookup_by_name_and_ref(self):
        spec = get_scenario("zgb")
        assert spec.name == "zgb"
        assert is_scenario_ref("zgb") and is_scenario_ref("x/y/z.toml")
        assert not is_scenario_ref("fig4")
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("nope")

    def test_find_scenario_by_path(self, tmp_path):
        p = tmp_path / "mine.toml"
        p.write_text(BASE)
        assert find_scenario(str(p)).name == "t"

    def test_every_zoo_entry_passes_preflight(self):
        for name in scenario_names():
            assert lint_scenario(get_scenario(name)).ok()


class TestZgbBitIdentity:
    def test_scenario_matches_python_constructed_driver(self):
        """The acceptance criterion: DSL compile == hand-written model."""
        from repro.core.lattice import Lattice
        from repro.dmc.rsm import RSM
        from repro.models import zgb_model
        from repro.resilience.runs import run_digest

        spec = get_scenario("zgb")
        a = build_engine(spec)  # scenario's declared seed 0
        a.run(until=5.0)
        b = RSM(zgb_model(0.51), Lattice((10, 10)), seed=0)
        b.run(until=5.0)
        assert run_digest(a) == run_digest(b)


class TestGates:
    def test_zgb_gates_pass(self):
        results = run_gates(get_scenario("zgb"))
        assert [r.gate for r in results] == ["lint", "fingerprint"]
        assert all(r.ok for r in results), [r.render() for r in results]

    def test_fingerprint_mismatch_fails(self):
        spec = loads_scenario(
            BASE + '\n[gates.fingerprint]\ndigest = "0000000000000000"\n'
        )
        results = run_gates(spec)
        fp = results[-1]
        assert fp.gate == "fingerprint" and not fp.ok
        assert "!= recorded 0000000000000000" in fp.detail

    def test_lint_failure_short_circuits(self):
        spec = loads_scenario(BASE + "\n[gates]\nmass_dt = 1.0\n")
        results = run_gates(spec)
        assert len(results) == 1
        assert results[0].gate == "lint" and not results[0].ok

    def test_meanfield_gate_runs(self):
        spec = loads_scenario(
            BASE + "\n[gates.meanfield]\nspecies = [\"A\"]\nt = 1.0\ntol = 0.9\n"
        )
        results = run_gates(spec)
        mf = results[-1]
        assert mf.gate == "meanfield" and mf.ok, mf.render()


class TestRunner:
    DIGEST_LINE = re.compile(r"digest [0-9a-f]{16} t=[0-9.e+-]+ trials=\d+")

    def test_run_prints_provenance_and_digest(self, capsys):
        spec = loads_scenario(BASE)
        assert run_scenario(spec) == 0
        out = capsys.readouterr().out
        assert f"scenario t (<inline>) digest {spec.short_digest()}" in out
        assert self.DIGEST_LINE.search(out)

    def test_sweep_runs_every_grid_point(self, capsys):
        spec = loads_scenario(BASE + "\n[sweep]\nseed = [0, 1]\nuntil = [0.5]\n")
        assert run_scenario(spec, sweep=True) == 0
        out = capsys.readouterr().out
        assert "sweep: 2 point(s)" in out
        lines = [ln for ln in out.splitlines() if ln.startswith("sweep seed=")]
        assert len(lines) == 2
        assert all(self.DIGEST_LINE.search(ln) for ln in lines)

    def test_sweep_without_table_is_refused(self):
        with pytest.raises(ScenarioError, match="declares no \\[sweep\\] table"):
            run_scenario(loads_scenario(BASE), sweep=True)

    def test_sweep_rejects_resume_naming_the_orchestrator(self, tmp_path):
        spec = loads_scenario(BASE + "\n[sweep]\nseed = [0, 1]\n")
        with pytest.raises(ScenarioError, match="repro sweep"):
            run_scenario(spec, sweep=True, resume="", checkpoint_dir=tmp_path)

    def test_sweep_routes_checkpoints_to_per_point_dirs(self, capsys, tmp_path):
        from repro.jobs.journal import job_key

        spec = loads_scenario(BASE + "\n[sweep]\nseed = [0, 1]\n")
        assert run_scenario(spec, sweep=True, checkpoint_dir=tmp_path) == 0
        digest = spec.digest()
        for seed in (0, 1):
            sub = tmp_path / job_key(digest, {"seed": seed})
            assert list(sub.glob("ckpt_*.json"))

    def test_checkpoint_and_resume_roundtrip(self, capsys, tmp_path):
        spec = loads_scenario(BASE)
        assert run_scenario(spec, checkpoint_dir=tmp_path) == 0
        assert list(tmp_path.glob("ckpt_*.json"))
        straight = capsys.readouterr().out
        assert run_scenario(spec, resume="", checkpoint_dir=tmp_path) == 0
        resumed = capsys.readouterr().out
        assert "nothing to do" in resumed
        # the resumed engine reports the same digest as the straight run
        assert self.DIGEST_LINE.search(straight).group(0) == (
            self.DIGEST_LINE.search(resumed).group(0)
        )


class TestScenarioCli:
    """`repro run <scenario>` / `repro scenarios` / `repro lint --scenarios`."""

    def test_run_zoo_scenario_by_name(self, capsys):
        assert main(["run", "zgb", "--until", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "scenario zgb (zoo/zgb.toml)" in out
        assert TestRunner.DIGEST_LINE.search(out)

    def test_run_scenario_file(self, capsys, tmp_path):
        p = tmp_path / "s.toml"
        p.write_text(BASE)
        assert main(["run", str(p)]) == 0
        assert "scenario t" in capsys.readouterr().out

    def test_sweep_flag(self, capsys):
        assert main(["run", "zgb", "--sweep"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 3 point(s)" in out

    @pytest.mark.parametrize(
        "text,fragment",
        [
            (BAD_DOCS[0][0], BAD_DOCS[0][1]),  # unknown top-level key
            (edited("rate = 0.4", "rate = -0.4"), "strictly positive"),
            (BASE + "\n[gates]\nmass_dt = 1.0\n", "SR010"),
        ],
    )
    def test_bad_scenario_exits_2_without_traceback(
        self, capsys, tmp_path, text, fragment
    ):
        p = tmp_path / "bad.toml"
        p.write_text(text)
        assert main(["run", str(p)]) == 2
        err = capsys.readouterr().err
        assert fragment in err
        assert "Traceback" not in err

    def test_unreadable_file_exits_2(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "missing.toml")]) == 2
        err = capsys.readouterr().err
        assert "cannot read scenario file" in err and "Traceback" not in err

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in TestRegistry.ZOO:
            assert name in out
        assert "digest" in out

    def test_scenarios_check(self, capsys):
        assert main(["scenarios", "--check"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok   ") == len(TestRegistry.ZOO)

    def test_scenarios_gates_one_entry(self, capsys):
        assert main(["scenarios", "--gates", "ab2-desorption"]) == 0
        out = capsys.readouterr().out
        assert "lint" in out and "fingerprint" in out and "meanfield" in out
        assert "FAIL" not in out

    def test_scenarios_gates_unknown_name(self, capsys):
        assert main(["scenarios", "--gates", "nope"]) == 2
        assert "unknown scenario(s) ['nope']" in capsys.readouterr().err

    def test_lint_scenarios_pass(self, capsys):
        assert main(["lint", "--scenarios", "--strict"]) == 0
        out = capsys.readouterr().out
        for name in TestRegistry.ZOO:
            assert name in out

    def test_list_includes_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "scenarios (declarative TOML" in out and "zgb" in out

    def test_bench_scenario_record(self, capsys, tmp_path):
        import json

        assert main(
            ["bench", "--scenario", "zgb", "--json", "--out", str(tmp_path)]
        ) == 0
        record = json.loads((tmp_path / "BENCH_scenario-zgb.json").read_text())
        spec = get_scenario("zgb")
        prov = record["extra"]["scenario"]
        assert prov["digest"] == spec.digest()
        assert prov["seed"] == spec.run.seed and prov["params"] == {}
