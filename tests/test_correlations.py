"""Tests for spatial-correlation analysis."""

import numpy as np
import pytest

from repro.analysis import (
    PairCorrelationObserver,
    nn_pair_fraction,
    pair_correlation,
    structure_factor,
)
from repro.core import Configuration, Lattice
from repro.core.species import SpeciesRegistry


@pytest.fixture
def sp():
    return SpeciesRegistry(["*", "A", "B"]).freeze()


def checkerboard_config(lat, sp, a="A", b="*"):
    arr = np.empty(lat.n_sites, dtype=np.uint8)
    for flat in range(lat.n_sites):
        i, j = lat.coords(flat)
        arr[flat] = sp.code(a) if (i + j) % 2 == 0 else sp.code(b)
    return Configuration(lat, sp, arr)


class TestPairCorrelation:
    def test_uncorrelated_random(self, sp, rng):
        lat = Lattice((60, 60))
        cfg = Configuration.random(lat, sp, {"A": 0.4}, rng)
        g = pair_correlation(cfg, "A", "A", (1, 0))
        assert g == pytest.approx(1.0, abs=0.08)

    def test_checkerboard_antiferro(self, sp):
        lat = Lattice((10, 10))
        cfg = checkerboard_config(lat, sp)
        # A never neighbours A on a checkerboard
        assert pair_correlation(cfg, "A", "A", (1, 0)) == 0.0
        # but always at distance (1, 1)
        assert pair_correlation(cfg, "A", "A", (1, 1)) == pytest.approx(2.0)

    def test_absent_species_is_nan(self, sp):
        lat = Lattice((4, 4))
        cfg = Configuration.empty(lat, sp)
        assert np.isnan(pair_correlation(cfg, "A", "A", (1, 0)))

    def test_cross_species(self, sp):
        lat = Lattice((10, 10))
        cfg = checkerboard_config(lat, sp, a="A", b="B")
        assert pair_correlation(cfg, "A", "B", (1, 0)) == pytest.approx(2.0)


class TestNNPairFraction:
    def test_checkerboard(self, sp):
        lat = Lattice((10, 10))
        cfg = checkerboard_config(lat, sp, a="A", b="B")
        # every ordered nn pair is A-B or B-A
        assert nn_pair_fraction(cfg, "A", "B") == pytest.approx(0.5)
        assert nn_pair_fraction(cfg, "A", "A") == 0.0

    def test_full_lattice(self, sp):
        lat = Lattice((6, 6))
        cfg = Configuration.filled(lat, sp, "A")
        assert nn_pair_fraction(cfg, "A", "A") == pytest.approx(1.0)

    def test_1d(self, sp):
        lat = Lattice((6,))
        cfg = Configuration.from_grid(lat, sp, ["A", "B", "A", "B", "A", "B"])
        assert nn_pair_fraction(cfg, "A", "B") == pytest.approx(0.5)


class TestStructureFactor:
    def test_checkerboard_peak_at_pi_pi(self, sp):
        lat = Lattice((8, 8))
        cfg = checkerboard_config(lat, sp)
        s = structure_factor(cfg, "A")
        assert s.shape == (8, 8)
        # the (pi, pi) component dominates
        peak = np.unravel_index(np.argmax(s), s.shape)
        assert peak == (4, 4)

    def test_uniform_has_no_structure(self, sp):
        lat = Lattice((8, 8))
        cfg = Configuration.filled(lat, sp, "A")
        s = structure_factor(cfg, "A")
        assert np.allclose(s, 0.0)


class TestPairCorrelationObserver:
    def test_samples_and_steady_mean(self, ziff):
        from repro.dmc import RSM

        obs = PairCorrelationObserver(0.5, "O", "O", (1, 0))
        sim = RSM(ziff, Lattice((16, 16)), seed=0, observers=[obs])
        sim.run(until=5.0)
        data = obs.data()
        assert len(data["pair_corr_times"]) == 11
        mean = obs.steady_mean()
        assert np.isfinite(mean) and mean > 0

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            PairCorrelationObserver(0.0, "A", "A", (1, 0))
