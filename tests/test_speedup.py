"""Tests for the speedup calibration drivers."""



from repro.core import Lattice
from repro.parallel.machine import DEFAULT_2003
from repro.parallel.speedup import (
    calibrated_spec,
    fig7_surface,
    measure_acceptance,
    measure_t_trial,
)


class TestMeasurement:
    def test_t_trial_positive_and_small(self, ziff):
        t = measure_t_trial(ziff, Lattice((30, 30)), repeats=3)
        assert 0 < t < 1e-3  # less than a millisecond per trial

    def test_acceptance_in_range(self, ziff):
        a = measure_acceptance(ziff, Lattice((30, 30)), steps=10)
        assert 0.0 < a < 1.0

    def test_calibrated_spec_keeps_network_constants(self, ziff):
        spec = calibrated_spec(ziff, Lattice((30, 30)))
        assert spec.t_latency == DEFAULT_2003.t_latency
        assert spec.t_update == DEFAULT_2003.t_update
        assert spec.t_trial != DEFAULT_2003.t_trial


class TestFig7Surface:
    def test_default_axes(self):
        sides, ps, surf = fig7_surface()
        assert sides[0] == 200 and sides[-1] == 1000
        assert ps == list(range(2, 11))
        assert surf.shape == (len(sides), len(ps))

    def test_custom_axes(self):
        sides, ps, surf = fig7_surface(DEFAULT_2003, sides=[100], ps=[2, 4])
        assert surf.shape == (1, 2)
        assert surf[0, 0] < surf[0, 1] < 4
