"""Unit tests for repro.partition.coloring."""


from repro.core import Lattice, Model, ReactionType
from repro.partition.coloring import (
    chunk_count_bounds,
    clique_lower_bound,
    conflict_graph,
    greedy_partition,
)


class TestConflictGraph:
    def test_node_count(self, ziff):
        g = conflict_graph(Lattice((6, 6)), ziff)
        assert g.number_of_nodes() == 36

    def test_degree_matches_difference_set(self, ziff):
        # every site conflicts with the 12 sites at L1 distance <= 2
        g = conflict_graph(Lattice((10, 10)), ziff)
        degrees = {d for _, d in g.degree()}
        assert degrees == {12}

    def test_onsite_model_edgeless(self, small_lattice):
        m = Model(["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 1.0)])
        g = conflict_graph(small_lattice, m)
        assert g.number_of_edges() == 0


class TestGreedyPartition:
    def test_validated(self, ziff):
        p = greedy_partition(Lattice((10, 10)), ziff)
        assert p.is_conflict_free(ziff)

    def test_at_least_lower_bound(self, ziff):
        p = greedy_partition(Lattice((10, 10)), ziff)
        assert p.m >= clique_lower_bound(ziff)

    def test_strategy_parameter(self, ziff):
        p = greedy_partition(
            Lattice((10, 10)), ziff, strategy="smallest_last"
        )
        assert p.is_conflict_free(ziff)


class TestCliqueBound:
    def test_ziff_is_five(self, ziff):
        assert clique_lower_bound(ziff) == 5

    def test_onsite_model_is_one(self):
        m = Model(["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 1.0)])
        assert clique_lower_bound(m) == 1

    def test_1d_pair_model(self):
        hop = Model(
            ["*", "A"],
            [ReactionType("r", [((0,), "A", "*"), ((1,), "*", "A")], 1.0)],
        )
        # neighborhood {0, 1}: sites 0,1,2 pairwise conflict -> bound 3?
        # differences of {0,1} are {-1, 1}; only adjacent sites conflict,
        # so the largest clique is an edge: bound 2
        assert clique_lower_bound(hop) == 2

    def test_ising_five_site_patterns(self):
        from repro.models import ising_model_2d

        m = ising_model_2d(beta=0.5)
        # the 5-site cross conflicts out to L1 distance 2: contains the
        # 13-site ball? the max clique is larger than the pair models'
        assert clique_lower_bound(m) >= 5

    def test_bounds_consistent(self, ziff):
        lo, hi = chunk_count_bounds(Lattice((10, 10)), ziff)
        assert lo == 5
        assert hi >= lo


class TestDegenerateLattices:
    """Colouring-based partitions on 1xN strips and misaligned sides."""

    def test_strip_conflict_graph_is_circulant(self, ziff):
        # on a 1xN strip vertical offsets wrap onto the site itself;
        # what remains are the horizontal distance-1 and -2 conflicts
        g = conflict_graph(Lattice((1, 9)), ziff)
        assert {d for _, d in g.degree()} == {4}

    def test_tiny_strip_conflict_graph_complete(self, ziff):
        g = conflict_graph(Lattice((1, 5)), ziff)
        assert g.number_of_edges() == 5 * 4 // 2

    def test_greedy_on_misaligned_strip_passes_linter(self, ziff):
        from repro.lint import lint_partition

        p = greedy_partition(Lattice((1, 7)), ziff)
        report = lint_partition(p, ziff)
        assert report.ok(strict=True), report.render()

    def test_greedy_on_7x7_passes_linter(self, ziff):
        from repro.lint import lint_partition

        p = greedy_partition(Lattice((7, 7)), ziff)
        assert lint_partition(p, ziff).ok(strict=True)
        # the five-chunk tiling cannot exist on this shape (wrap), so
        # greedy needs at least the clique bound of chunks
        assert p.m >= clique_lower_bound(ziff)
