"""Tests for the automatic mean-field generator."""

import numpy as np
import pytest

from repro.analysis.meanfield import (
    integrate_mean_field,
    mean_field_rates,
    mean_field_rhs_for,
)
from repro.core import Lattice, Model, ReactionType
from repro.dmc import RSM
from repro.models import diffusion_model_2d, pt100_model


@pytest.fixture
def langmuir():
    """Adsorption/desorption, exactly solvable even beyond mean field."""
    return Model(
        ["*", "A"],
        [
            ReactionType("ads", [((0, 0), "*", "A")], 2.0),
            ReactionType("des", [((0, 0), "A", "*")], 1.0),
        ],
        name="langmuir",
    )


class TestRates:
    def test_single_site(self, langmuir):
        r = mean_field_rates(langmuir, np.array([0.25, 0.75]))
        assert r.tolist() == [2.0 * 0.25, 1.0 * 0.75]

    def test_pair_pattern_is_quadratic(self, ziff):
        theta = np.array([0.5, 0.3, 0.2])
        r = mean_field_rates(ziff, theta)
        o2 = r[ziff.type_index("O2_ads(0)")]
        assert o2 == pytest.approx(0.5 * 0.5 * 0.5)  # k * theta_*^2
        rx = r[ziff.type_index("CO+O(0)")]
        assert rx == pytest.approx(2.0 * 0.3 * 0.2)

    def test_shape_validation(self, ziff):
        with pytest.raises(ValueError):
            mean_field_rates(ziff, np.array([0.5, 0.5]))


class TestRHS:
    def test_conserves_total(self, ziff):
        rhs = mean_field_rhs_for(ziff)
        d = rhs(np.array([0.2, 0.5, 0.3]))
        assert d.sum() == pytest.approx(0.0, abs=1e-14)

    def test_diffusion_is_identically_zero(self):
        rhs = mean_field_rhs_for(diffusion_model_2d())
        for theta in ([0.5, 0.5], [0.9, 0.1]):
            assert np.allclose(rhs(np.array(theta)), 0.0)

    def test_matches_handwritten_pt100(self):
        """The generic generator reproduces the hand-derived Pt(100)
        mean field (which was written with the same closure)."""
        from repro.models import OSCILLATING, mean_field_rhs

        model = pt100_model()
        generic = mean_field_rhs_for(model)
        rng = np.random.default_rng(0)
        for _ in range(10):
            theta = rng.dirichlet(np.ones(5))
            a = generic(theta)
            b = mean_field_rhs(theta, OSCILLATING)
            assert np.allclose(a, b, atol=1e-10), (theta, a, b)


class TestIntegration:
    def test_langmuir_closed_form(self, langmuir):
        # theta(t) = K/(K+1) (1 - exp(-(k_a+k_d) t)), K = k_a/k_d = 2
        t, cov = integrate_mean_field(langmuir, {"*": 1.0}, t_end=3.0)
        expected = (2 / 3) * (1 - np.exp(-3.0 * t))
        assert np.allclose(cov["A"], expected, atol=1e-6)

    def test_dict_initial_with_remainder(self, ziff):
        t, cov = integrate_mean_field(ziff, {"CO": 0.2}, t_end=1.0)
        assert cov["*"][0] == pytest.approx(0.8)

    def test_invalid_initial(self, ziff):
        with pytest.raises(ValueError):
            integrate_mean_field(ziff, [0.5, 0.5, 0.5], 1.0)

    def test_matches_lattice_when_correlations_are_weak(self, langmuir):
        # single-site chemistry has no correlations: lattice == mean field
        t, cov = integrate_mean_field(langmuir, {"*": 1.0}, t_end=2.0)
        res = RSM(langmuir, Lattice((40, 40)), seed=0).run(until=2.0)
        assert res.final_state.coverage("A") == pytest.approx(
            cov["A"][-1], abs=0.03
        )

    def test_pt100_oscillates_under_generic_mf(self):
        model = pt100_model()
        t, cov = integrate_mean_field(
            model, {"h": 1.0}, t_end=300.0, n_samples=1500
        )
        co = cov["hC"] + cov["sC"]
        late = t > 150
        assert co[late].max() - co[late].min() > 0.3
