"""Cross-module integration tests.

These tie the whole stack together: every simulation algorithm run on
the paper's models, compared against each other and against the exact
Master Equation where feasible — the reproduction's end-to-end
correctness statement.
"""

import numpy as np
import pytest

from repro.ca import LPNDCA, NDCA, PNDCA, TypePartitionedCA
from repro.core import Configuration, Lattice
from repro.dmc import FRM, RSM, VSSM, CoverageObserver, MasterEquation
from repro.models import hex_surface, pt100_model, ziff_model
from repro.partition import Partition, five_chunk_partition


class TestAllAlgorithmsOnZiff:
    """Every simulator must run the Table I model and stay consistent."""

    def _simulators(self, model, lat):
        p5 = five_chunk_partition(lat)
        p5.validate_conflict_free(model)
        return [
            RSM(model, lat, seed=1),
            VSSM(model, lat, seed=2),
            FRM(model, lat, seed=3),
            NDCA(model, lat, seed=4),
            PNDCA(model, lat, seed=5, partition=p5),
            LPNDCA(model, lat, seed=6, partition=p5, L=1),
            LPNDCA(model, lat, seed=7, partition=p5, L="chunk",
                   chunk_selection="random-order"),
            TypePartitionedCA(model, lat, seed=8),
        ]

    def test_all_run_and_stay_in_domain(self, ziff):
        lat = Lattice((10, 10))
        for sim in self._simulators(ziff, lat):
            res = sim.run(until=3.0)
            assert res.final_time >= 3.0 or res.n_trials > 0
            assert res.final_state.array.max() < len(ziff.species)
            assert res.final_state.counts().sum() == lat.n_sites, sim.algorithm

    def test_all_make_progress(self, ziff):
        lat = Lattice((10, 10))
        for sim in self._simulators(ziff, lat):
            res = sim.run(until=2.0)
            assert res.n_executed > 0, sim.algorithm

    def test_dmc_family_transient_consensus(self, ziff):
        """RSM/VSSM/FRM sample the same process: their ensemble means
        of theta_O(t=2) agree within stochastic error."""
        lat = Lattice((10, 10))
        means = {}
        for cls, base in ((RSM, 0), (VSSM, 100), (FRM, 200)):
            vals = [
                cls(ziff, lat, seed=base + s).run(until=2.0).final_state.coverage("O")
                for s in range(6)
            ]
            means[cls.__name__] = float(np.mean(vals))
        spread = max(means.values()) - min(means.values())
        assert spread < 0.12, means


class TestExactGroundTruth:
    """Ensemble kinetics vs the integrated Master Equation on 2x2."""

    @pytest.fixture(scope="class")
    def me_setup(self):
        model = ziff_model(k_co=1.0, k_o2=0.5, k_co2=2.0)
        lat = Lattice((2, 2))
        me = MasterEquation(model, lat)
        p0 = me.delta(Configuration.empty(lat, model.species))
        exact = me.propagate(p0, [0.8])[0]
        return model, lat, {
            "CO": float(me.expected_coverage(exact, "CO")),
            "O": float(me.expected_coverage(exact, "O")),
        }

    @pytest.mark.parametrize("algorithm", ["RSM", "VSSM", "FRM", "LPNDCA-L1"])
    def test_algorithm_matches_me(self, me_setup, algorithm):
        model, lat, exact = me_setup
        n_runs = 250

        def make(seed):
            if algorithm == "RSM":
                return RSM(model, lat, seed=seed)
            if algorithm == "VSSM":
                return VSSM(model, lat, seed=seed)
            if algorithm == "FRM":
                return FRM(model, lat, seed=seed)
            p = Partition.singletons(lat)
            p.validate_conflict_free(model)
            return LPNDCA(model, lat, seed=seed, partition=p, L=1)

        cov_co = np.empty(n_runs)
        cov_o = np.empty(n_runs)
        for s in range(n_runs):
            res = make(s).run(until=0.8)
            cov_co[s] = res.final_state.coverage("CO")
            cov_o[s] = res.final_state.coverage("O")
        # 4-site lattice: per-run std <= 0.5 -> se ~ 0.032; allow ~3 se
        assert cov_co.mean() == pytest.approx(exact["CO"], abs=0.09), algorithm
        assert cov_o.mean() == pytest.approx(exact["O"], abs=0.09), algorithm


class TestPt100EndToEnd:
    def test_pndca_tracks_rsm_transient(self):
        model = pt100_model()
        lat = Lattice((20, 20))
        p5 = five_chunk_partition(lat)
        p5.validate_conflict_free(model)
        obs = lambda: CoverageObserver(0.5, species=("hC", "sC", "sO"))
        r1 = RSM(
            model, lat, seed=0, initial=hex_surface(lat, model), observers=[obs()]
        ).run(until=6.0)
        r2 = PNDCA(
            model, lat, seed=1, initial=hex_surface(lat, model),
            partition=p5, observers=[obs()],
        ).run(until=6.0)
        co1 = r1.coverage["hC"] + r1.coverage["sC"]
        co2 = r2.coverage["hC"] + r2.coverage["sC"]
        # the early CO-uptake transient is deterministic enough to compare
        early = r1.times <= 2.0
        assert np.abs(co1[early] - co2[early]).max() < 0.15

    def test_observer_grid_alignment_across_algorithms(self):
        model = pt100_model()
        lat = Lattice((10, 10))
        p5 = five_chunk_partition(lat)
        p5.validate_conflict_free(model)
        obs = lambda: CoverageObserver(1.0, species=("sO",))
        r1 = RSM(model, lat, seed=0, initial=hex_surface(lat, model),
                 observers=[obs()]).run(until=5.0)
        r2 = LPNDCA(model, lat, seed=0, initial=hex_surface(lat, model),
                    partition=p5, L=1, observers=[obs()]).run(until=5.0)
        assert np.array_equal(r1.times, r2.times)


class TestExperimentRegistry:
    def test_registry_complete(self):
        import repro.experiments as E

        expected = {
            "table1", "table2", "fig2", "fig3", "fig4", "fig6", "fig7",
            "fig8", "fig9", "fig10", "criteria", "phase-diagram",
            "ndca-bias", "fast-diffusion", "ablation-strategies",
            "ablation-kernels",
        }
        assert set(E.REGISTRY) == expected

    def test_unknown_experiment(self):
        import repro.experiments as E

        with pytest.raises(KeyError, match="unknown experiment"):
            E.report("fig99")
