"""Tests for ``repro.lint.protocol`` — the SR070-range protocol verifier.

Three layers:

* the clean pass: the shipped executor/resilience/engine sources must
  be proven leak-free, pairing-balanced, round-trip-consistent,
  draw-invariant and spawn-safe (no diagnostics, one note per pass),
* adversarial mutants of the shipped sources — a removed ``unlink``,
  a dropped ``restore_signals``, a drifted payload key, a stripped
  decoder, an extra RNG draw in a recovery rung, a dropped snapshot
  restore, a live resource in ``initargs`` and a use-after-release —
  each of which must trip *exactly* its intended SR07x code at the
  correct file/line,
* the integration seams: the ``repro lint --protocol`` CLI gate, the
  deterministic ``--json`` ordering, the bench provenance verdict and
  the docstring/registry parity.
"""

import inspect
import json
import subprocess
import sys

import repro.dmc.base as dmc_base
import repro.parallel.executor as executor_mod
import repro.resilience.checkpoint as ckpt_mod
from repro.lint.diagnostics import CODES, Diagnostic, LintReport
from repro.lint.protocol import (
    PROTOCOL_CODES,
    audit_ladder,
    audit_pairs,
    audit_roundtrip,
    audit_shm_lifecycle,
    audit_spawn,
    lint_protocol,
    protocol_verdict,
)

EXECUTOR_SRC = inspect.getsource(executor_mod)
CHECKPOINT_SRC = inspect.getsource(ckpt_mod)
DMC_BASE_SRC = inspect.getsource(dmc_base)


def codes_of(report):
    return sorted(d.code for d in report.diagnostics)


def mutate(source: str, old: str, new: str, count: int = 1) -> str:
    """Textual mutant; fails loudly if the anchor text drifted."""
    assert source.count(old) >= count, f"mutation anchor not found: {old!r}"
    return source.replace(old, new, count)


def line_of(source: str, needle: str, occurrence: int = 1) -> int:
    """1-based line of the nth occurrence of ``needle`` in ``source``."""
    seen = 0
    for i, text in enumerate(source.splitlines(), start=1):
        if needle in text:
            seen += 1
            if seen == occurrence:
                return i
    raise AssertionError(f"needle not found: {needle!r}")


# ----------------------------------------------------------------------
# clean pass over the shipped tree
# ----------------------------------------------------------------------
class TestCleanPass:
    def test_shipped_tree_is_clean(self):
        report = lint_protocol()
        assert report.ok(), "\n".join(d.render() for d in report.diagnostics)
        assert codes_of(report) == []

    def test_every_pass_vouches_with_a_note(self):
        notes = "\n".join(lint_protocol().notes)
        for fragment in (
            "protocol typestate",
            "protocol ladder",
            "protocol spawn",
            "protocol pairing",
            "protocol round-trip",
        ):
            assert fragment in notes

    def test_typestate_clean_on_executor(self):
        report = audit_shm_lifecycle(EXECUTOR_SRC, "executor.py")
        assert codes_of(report) == []
        assert "releasers" in report.notes[0]

    def test_pairing_clean_on_checkpoint_and_registry(self):
        import repro.backends.registry as registry_mod

        for mod in (ckpt_mod, registry_mod):
            src = inspect.getsource(mod)
            report = audit_pairs(src, f"{mod.__name__}.py")
            assert codes_of(report) == [], mod.__name__

    def test_roundtrip_clean_on_all_engines(self):
        import repro.ca.pndca as ca_pndca
        import repro.ensemble.base as ens_base
        import repro.ensemble.pndca as ens_pndca

        for mod, cls in (
            (dmc_base, "SimulatorBase"),
            (ens_base, "EnsembleBase"),
            (ca_pndca, "PNDCA"),
            (ens_pndca, "EnsemblePNDCA"),
        ):
            report = audit_roundtrip(inspect.getsource(mod), "m.py", cls)
            assert codes_of(report) == [], cls

    def test_ladder_and_spawn_clean_on_executor(self):
        assert codes_of(audit_ladder(EXECUTOR_SRC, "executor.py")) == []
        assert codes_of(audit_spawn(EXECUTOR_SRC, "executor.py")) == []


# ----------------------------------------------------------------------
# seeded mutants: exactly the intended code at the correct file/line
# ----------------------------------------------------------------------
class TestMutants:
    def test_removed_unlink_trips_sr070_at_close_site(self):
        src = mutate(EXECUTOR_SRC, "shm.unlink()", "pass")
        report = audit_shm_lifecycle(src, "mutant.py")
        assert codes_of(report) == ["SR070"]
        d = report.diagnostics[0]
        assert d.data["file"] == "mutant.py"
        assert d.data["line"] == line_of(src, "shm.close()")
        assert "never unlinks" in d.message

    def test_view_creation_outside_try_trips_sr070(self):
        # regress the __init__ hardening: hoist the view zeroing out of
        # the protective try (the pre-fix shape of the shipped code)
        src = mutate(
            EXECUTOR_SRC,
            "        try:\n"
            "            self._state: np.ndarray | None = np.ndarray(\n"
            "                (lattice.n_sites,), dtype=np.uint8, buffer=self._shm.buf\n"
            "            )\n"
            "            self._state[:] = 0\n",
            "        self._state: np.ndarray | None = np.ndarray(\n"
            "            (lattice.n_sites,), dtype=np.uint8, buffer=self._shm.buf\n"
            "        )\n"
            "        self._state[:] = 0\n"
            "        try:\n",
        )
        report = audit_shm_lifecycle(src, "mutant.py")
        assert set(codes_of(report)) == {"SR070"}
        lines = {d.data["line"] for d in report.diagnostics}
        assert line_of(src, "self._state[:] = 0") in lines

    def test_use_after_release_trips_sr071(self):
        src = mutate(
            EXECUTOR_SRC,
            "        self._release_shm()\n\n    def __enter__",
            "        self._release_shm()\n"
            "        self._state[:] = 0\n\n    def __enter__",
        )
        report = audit_shm_lifecycle(src, "mutant.py")
        assert codes_of(report) == ["SR071"]
        d = report.diagnostics[0]
        assert d.data["line"] == line_of(src, "self._state[:] = 0", 2)
        assert d.data["method"] == "close"

    def test_dropped_restore_signals_trips_sr072_at_install_site(self):
        src = mutate(
            CHECKPOINT_SRC,
            "        if signals:\n            checkpointer.restore_signals()",
            "        pass",
        )
        report = audit_pairs(src, "mutant.py")
        assert codes_of(report) == ["SR072"]
        d = report.diagnostics[0]
        assert d.data["line"] == line_of(src, "checkpointer.install_signals()")
        assert d.data["pop"] == "restore_signals"

    def test_dropped_stack_pop_trips_sr072_at_append_site(self):
        src = mutate(
            CHECKPOINT_SRC,
            "        _default_stack.pop()",
            "        pass",
        )
        report = audit_pairs(src, "mutant.py")
        assert codes_of(report) == ["SR072"]
        d = report.diagnostics[0]
        assert d.data["line"] == line_of(
            src, "_default_stack.append(checkpointer)"
        )

    def test_payload_key_drift_trips_sr073_on_both_sides(self):
        src = mutate(
            DMC_BASE_SRC, '"n_trials": int(self.n_trials)',
            '"trial_count": int(self.n_trials)',
        )
        report = audit_roundtrip(src, "mutant.py", "SimulatorBase")
        assert codes_of(report) == ["SR073", "SR073"]
        by_dir = {d.data["direction"]: d for d in report.diagnostics}
        written = by_dir["written-not-restored"]
        restored = by_dir["restored-not-written"]
        assert written.data["key"] == "trial_count"
        assert written.data["line"] == line_of(src, '"trial_count"')
        assert restored.data["key"] == "n_trials"
        assert restored.data["line"] == line_of(src, 'payload["n_trials"]')

    def test_stripped_decoder_trips_sr074(self):
        src = mutate(
            DMC_BASE_SRC,
            'array = decode_array(payload["state"])',
            'array = payload["state"]',
        )
        report = audit_roundtrip(src, "mutant.py", "SimulatorBase")
        assert codes_of(report) == ["SR074"]
        d = report.diagnostics[0]
        assert d.data["key"] == "state"
        assert d.data["produced"] == "array"
        assert d.data["line"] == line_of(src, 'array = payload["state"]')

    def test_extra_draw_in_retry_rung_trips_sr075(self):
        src = mutate(
            EXECUTOR_SRC,
            "        pre = self._state.copy()\n",
            "        pre = self._state.copy()\n"
            "        jitter = np.random.random()\n",
        )
        report = audit_ladder(src, "mutant.py")
        assert codes_of(report) == ["SR075"]
        d = report.diagnostics[0]
        assert d.data["line"] == line_of(src, "jitter = np.random.random()")
        assert d.data["method"] == "_execute_fault_tolerant"

    def test_worker_side_draw_trips_sr075(self):
        src = mutate(
            EXECUTOR_SRC,
            "    if die:  # chaos: SIGKILL this worker mid-chunk",
            "    _jitter = np.random.random()\n"
            "    if die:  # chaos: SIGKILL this worker mid-chunk",
        )
        report = audit_ladder(src, "mutant.py")
        assert codes_of(report) == ["SR075"]
        d = report.diagnostics[0]
        assert d.data["method"] == "_exec_slice"
        assert d.data["line"] == line_of(src, "_jitter = np.random.random()")

    def test_dropped_snapshot_restore_trips_sr076(self):
        src = mutate(
            EXECUTOR_SRC,
            "                self._respawn_pool(attempt)\n"
            "                self._state[:] = pre",
            "                self._respawn_pool(attempt)",
        )
        report = audit_ladder(src, "mutant.py")
        assert codes_of(report) == ["SR076"]
        d = report.diagnostics[0]
        assert d.data["line"] == line_of(src, "except _RECOVERABLE as exc:")
        assert "snapshot" in d.message

    def test_uncaptured_mutation_in_rung_trips_sr076(self):
        src = mutate(
            EXECUTOR_SRC,
            "        self._degraded = True\n",
            "        self._degraded = True\n"
            "        self.chunk_timeout = None\n",
        )
        report = audit_ladder(src, "mutant.py")
        assert codes_of(report) == ["SR076"]
        d = report.diagnostics[0]
        assert d.data["attr"] == "chunk_timeout"
        assert d.data["line"] == line_of(src, "self.chunk_timeout = None")

    def test_live_shm_in_initargs_trips_sr077(self):
        src = mutate(EXECUTOR_SRC, "self._shm.name,", "self._shm,")
        report = audit_spawn(src, "mutant.py")
        assert codes_of(report) == ["SR077"]
        d = report.diagnostics[0]
        assert d.data["attr"] == "self._shm"
        assert d.data["line"] == line_of(src, "self._shm,")

    def test_live_backend_in_initargs_trips_sr077(self):
        src = mutate(EXECUTOR_SRC, "self.backend.name,", "self.backend,")
        report = audit_spawn(src, "mutant.py")
        assert codes_of(report) == ["SR077"]
        assert report.diagnostics[0].data["attr"] == "self.backend"

    def test_worker_reading_master_global_trips_sr077(self):
        src = mutate(
            EXECUTOR_SRC,
            "_worker_kernels = None",
            "_worker_kernels = None\n_master_cache: dict = {}",
        )
        src = mutate(
            src,
            "    counts = np.zeros(_worker_compiled.n_types, dtype=np.int64)",
            "    _ = len(_master_cache)\n"
            "    counts = np.zeros(_worker_compiled.n_types, dtype=np.int64)",
        )
        report = audit_spawn(src, "mutant.py")
        assert codes_of(report) == ["SR077"]
        d = report.diagnostics[0]
        assert d.data["name"] == "_master_cache"
        assert d.data["line"] == line_of(src, "_ = len(_master_cache)")

    def test_unparseable_source_fails_closed_as_sr078(self):
        for audit in (
            lambda s: audit_shm_lifecycle(s, "m.py"),
            lambda s: audit_pairs(s, "m.py"),
            lambda s: audit_roundtrip(s, "m.py", "X"),
            lambda s: audit_ladder(s, "m.py"),
            lambda s: audit_spawn(s, "m.py"),
        ):
            report = audit("def broken(:\n")
            assert codes_of(report) == ["SR078"]

    def test_missing_class_fails_closed_as_sr078(self):
        report = audit_shm_lifecycle("x = 1\n", "m.py")
        assert codes_of(report) == ["SR078"]

    def test_line_offset_shifts_locations(self):
        src = mutate(EXECUTOR_SRC, "shm.unlink()", "pass")
        base = audit_shm_lifecycle(src, "m.py").diagnostics[0].data["line"]
        shifted = (
            audit_shm_lifecycle(src, "m.py", line_offset=100)
            .diagnostics[0]
            .data["line"]
        )
        assert shifted == base + 100


# ----------------------------------------------------------------------
# integration seams: CLI, JSON determinism, bench provenance, registry
# ----------------------------------------------------------------------
class TestIntegration:
    def test_registry_has_the_sr07x_range(self):
        for code in PROTOCOL_CODES:
            assert code in CODES
            severity, slug, desc = CODES[code]
            assert severity == "error"
            assert slug and desc

    def test_cli_protocol_strict_gate_passes(self):
        from repro.lint import cli

        assert cli.main(["--protocol", "--strict"]) == 0

    def test_cli_list_codes_includes_range(self, capsys):
        from repro.lint import cli

        assert cli.main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in PROTOCOL_CODES:
            assert code in out

    def test_cli_json_is_deterministically_ordered(self, capsys):
        from repro.lint import cli

        assert cli.main(["--protocol", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["diagnostics"] == []
        assert any("protocol" in n for n in doc["notes"])

    def test_to_json_sorts_by_code_file_line(self):
        report = LintReport()

        def mk(code, file, line):
            return Diagnostic(code, "s", "m", {"file": file, "line": line})

        report.add(mk("SR077", "b.py", 9))
        report.add(mk("SR070", "b.py", 5))
        report.add(mk("SR070", "a.py", 7))
        report.add(mk("SR070", "b.py", 2))
        doc = json.loads(report.to_json())
        got = [
            (d["code"], d["data"]["file"], d["data"]["line"])
            for d in doc["diagnostics"]
        ]
        assert got == [
            ("SR070", "a.py", 7),
            ("SR070", "b.py", 2),
            ("SR070", "b.py", 5),
            ("SR077", "b.py", 9),
        ]

    def test_protocol_verdict_shape(self):
        verdict = protocol_verdict()
        assert verdict["codes"] == list(PROTOCOL_CODES)
        assert verdict["ok"] is True
        assert verdict["errors"] == []
        assert len(verdict["digest"]) == 12

    def test_bench_records_carry_protocol_verdict(self):
        from repro.obs.bench import run_engine_bench

        record = run_engine_bench("rsm", side=8, until=0.5)
        block = record["extra"]["protocol_lint"]
        assert block["ok"] is True
        assert block["codes"] == list(PROTOCOL_CODES)
        assert "lint" in record["extra"]  # native verdict still present

    def test_native_lint_skip_env_warns(self):
        code = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as w:\n"
            "    warnings.simplefilter('always')\n"
            "    import repro.backends.cnative  # noqa: F401\n"
            "hits = [x for x in w if 'WITHOUT its native lint self-check'"
            " in str(x.message)]\n"
            "assert len(hits) == 1, [str(x.message) for x in w]\n"
            "assert issubclass(hits[0].category, RuntimeWarning)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": "src",
                "REPRO_NATIVE_LINT_SKIP": "1",
                "PATH": "/usr/bin:/bin",
            },
            cwd=".",
        )
        assert proc.returncode == 0, proc.stderr
