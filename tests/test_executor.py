"""Tests for the multiprocessing shared-memory executor."""

import numpy as np
import pytest

from repro.ca import PNDCA
from repro.core import Lattice
from repro.parallel.executor import ParallelChunkExecutor, ParallelPNDCA
from repro.partition import five_chunk_partition


@pytest.fixture
def setup(ziff):
    lat = Lattice((10, 10))
    p5 = five_chunk_partition(lat)
    p5.validate_conflict_free(ziff)
    return lat, p5


class TestExecutor:
    def test_execute_chunk_counts(self, ziff, setup):
        lat, p5 = setup
        with ParallelChunkExecutor(ziff, lat, n_workers=2) as ex:
            t = ziff.type_index("CO_ads")
            chunk = p5.chunks[0]
            counts = ex.execute_chunk(chunk, np.full(chunk.size, t, dtype=np.intp))
            assert counts[t] == chunk.size  # empty lattice: all succeed
            assert (ex.state[chunk] == ziff.species.code("CO")).all()

    def test_empty_chunk(self, ziff, setup):
        lat, _ = setup
        with ParallelChunkExecutor(ziff, lat, n_workers=2) as ex:
            counts = ex.execute_chunk(
                np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
            )
            assert counts.sum() == 0

    def test_load_state(self, ziff, setup):
        lat, _ = setup
        with ParallelChunkExecutor(ziff, lat, n_workers=1) as ex:
            arr = np.full(lat.n_sites, 2, dtype=np.uint8)
            ex.load_state(arr)
            assert (ex.state == 2).all()
            with pytest.raises(ValueError):
                ex.load_state(np.zeros(5, dtype=np.uint8))

    def test_closed_executor_rejects_work(self, ziff, setup):
        lat, p5 = setup
        ex = ParallelChunkExecutor(ziff, lat, n_workers=1)
        ex.close()
        with pytest.raises(RuntimeError):
            ex.execute_chunk(p5.chunks[0], np.zeros(p5.chunks[0].size, dtype=np.intp))
        ex.close()  # idempotent

    def test_n_workers_validation(self, ziff, setup):
        lat, _ = setup
        with pytest.raises(ValueError):
            ParallelChunkExecutor(ziff, lat, n_workers=0)


class TestParallelPNDCA:
    def test_bit_identical_to_serial(self, ziff, setup):
        lat, p5 = setup
        serial = PNDCA(ziff, lat, seed=11, partition=p5, strategy="ordered")
        rs = serial.run(until=4.0)
        with ParallelChunkExecutor(ziff, lat, n_workers=3) as ex:
            par = ParallelPNDCA(
                ziff, lat, seed=11, partition=p5, strategy="ordered", executor=ex
            )
            rp = par.run(until=4.0)
        assert np.array_equal(rs.final_state.array, rp.final_state.array)
        assert rs.n_executed == rp.n_executed
        assert np.array_equal(rs.executed_per_type, rp.executed_per_type)
        assert rs.final_time == pytest.approx(rp.final_time)

    def test_result_survives_executor_close(self, ziff, setup):
        lat, p5 = setup
        with ParallelChunkExecutor(ziff, lat, n_workers=2) as ex:
            par = ParallelPNDCA(
                ziff, lat, seed=1, partition=p5, executor=ex
            )
            res = par.run(until=2.0)
        # shared memory is gone; the result's state must still be usable
        assert res.final_state.counts().sum() == lat.n_sites

    def test_requires_conflict_free(self, ziff, setup):
        from repro.partition import Partition

        lat, _ = setup
        bad = Partition.single_chunk(lat)
        with ParallelChunkExecutor(ziff, lat, n_workers=1) as ex:
            with pytest.raises(ValueError):
                ParallelPNDCA(
                    ziff, lat, seed=0, partition=bad, validate=False, executor=ex
                )

    def test_lattice_mismatch(self, ziff, setup):
        lat, p5 = setup
        with ParallelChunkExecutor(ziff, Lattice((20, 20)), n_workers=1) as ex:
            with pytest.raises(ValueError, match="different lattice"):
                ParallelPNDCA(ziff, lat, seed=0, partition=p5, executor=ex)
