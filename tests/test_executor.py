"""Tests for the multiprocessing shared-memory executor."""

import numpy as np
import pytest

from repro.ca import PNDCA
from repro.core import Lattice
from repro.parallel.executor import ParallelChunkExecutor, ParallelPNDCA
from repro.partition import five_chunk_partition


@pytest.fixture
def setup(ziff):
    lat = Lattice((10, 10))
    p5 = five_chunk_partition(lat)
    p5.validate_conflict_free(ziff)
    return lat, p5


class TestExecutor:
    def test_execute_chunk_counts(self, ziff, setup):
        lat, p5 = setup
        with ParallelChunkExecutor(ziff, lat, n_workers=2) as ex:
            t = ziff.type_index("CO_ads")
            chunk = p5.chunks[0]
            counts = ex.execute_chunk(chunk, np.full(chunk.size, t, dtype=np.intp))
            assert counts[t] == chunk.size  # empty lattice: all succeed
            assert (ex.state[chunk] == ziff.species.code("CO")).all()

    def test_empty_chunk(self, ziff, setup):
        lat, _ = setup
        with ParallelChunkExecutor(ziff, lat, n_workers=2) as ex:
            counts = ex.execute_chunk(
                np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
            )
            assert counts.sum() == 0

    def test_load_state(self, ziff, setup):
        lat, _ = setup
        with ParallelChunkExecutor(ziff, lat, n_workers=1) as ex:
            arr = np.full(lat.n_sites, 2, dtype=np.uint8)
            ex.load_state(arr)
            assert (ex.state == 2).all()
            with pytest.raises(ValueError):
                ex.load_state(np.zeros(5, dtype=np.uint8))

    def test_load_state_rejects_dtype_mismatch(self, ziff, setup):
        # silently casting float/int64 into the uint8 shared buffer
        # would truncate every value without a trace
        lat, _ = setup
        with ParallelChunkExecutor(ziff, lat, n_workers=1) as ex:
            with pytest.raises(ValueError, match="dtype mismatch"):
                ex.load_state(np.zeros(lat.n_sites, dtype=np.float64))
            with pytest.raises(ValueError, match="dtype mismatch"):
                ex.load_state(np.zeros(lat.n_sites, dtype=np.int64))
            # the explicit cast spelt out in the error message works
            ex.load_state(np.ones(lat.n_sites).astype(np.uint8))
            assert (ex.state == 1).all()

    def test_default_context_is_platform_aware(self, ziff, setup):
        import multiprocessing as mp

        from repro.parallel.executor import _default_start_method

        lat, _ = setup
        assert _default_start_method() in mp.get_all_start_methods()
        with ParallelChunkExecutor(ziff, lat, n_workers=1) as ex:
            assert ex.context == _default_start_method()

    def test_explicit_spawn_context(self, ziff, setup):
        # spawn is available on every platform; the executor must work
        # with it even where fork is the auto-selected default
        lat, p5 = setup
        with ParallelChunkExecutor(ziff, lat, n_workers=2, context="spawn") as ex:
            t = ziff.type_index("CO_ads")
            chunk = p5.chunks[0]
            counts = ex.execute_chunk(chunk, np.full(chunk.size, t, dtype=np.intp))
            assert counts[t] == chunk.size

    def test_closed_executor_rejects_work(self, ziff, setup):
        lat, p5 = setup
        ex = ParallelChunkExecutor(ziff, lat, n_workers=1)
        ex.close()
        with pytest.raises(RuntimeError):
            ex.execute_chunk(p5.chunks[0], np.zeros(p5.chunks[0].size, dtype=np.intp))
        ex.close()  # idempotent

    def test_n_workers_validation(self, ziff, setup):
        lat, _ = setup
        with pytest.raises(ValueError):
            ParallelChunkExecutor(ziff, lat, n_workers=0)


class TestExecutorTeardown:
    """Regression tests for the init-leak and stale-view bugs."""

    def test_failed_init_releases_shared_memory(self, ziff, setup, monkeypatch):
        from multiprocessing import shared_memory

        from repro.parallel import executor as executor_mod

        lat, _ = setup
        created: list[str] = []
        real_shm = shared_memory.SharedMemory

        def recording_shm(*args, **kwargs):
            shm = real_shm(*args, **kwargs)
            if kwargs.get("create") or (args and args[0] is None):
                created.append(shm.name)
            return shm

        monkeypatch.setattr(
            executor_mod.shared_memory, "SharedMemory", recording_shm
        )
        # an unknown start method makes mp.get_context raise after the
        # segment has been created — the buggy __init__ leaked it
        with pytest.raises(ValueError):
            ParallelChunkExecutor(ziff, lat, n_workers=1, context="no-such-method")
        assert len(created) == 1
        # the segment must be unlinked: re-attaching by name must fail
        with pytest.raises(FileNotFoundError):
            real_shm(name=created[0])

    def test_state_access_raises_after_close(self, ziff, setup):
        lat, _ = setup
        ex = ParallelChunkExecutor(ziff, lat, n_workers=1)
        ex.close()
        # reading a view of the unlinked buffer would crash the
        # interpreter; every access path must raise instead
        with pytest.raises(RuntimeError, match="closed"):
            ex.state
        with pytest.raises(RuntimeError, match="closed"):
            ex.load_state(np.zeros(lat.n_sites, dtype=np.uint8))

    def test_close_tolerates_partial_construction(self, ziff, setup):
        lat, _ = setup
        ex = ParallelChunkExecutor.__new__(ParallelChunkExecutor)
        ex.close()  # no _pool/_shm/_closed attributes: must not raise

    def test_del_after_failed_init_is_silent(self, ziff, setup):
        lat, _ = setup
        ex = ParallelChunkExecutor.__new__(ParallelChunkExecutor)
        ex.__del__()

    def test_close_is_idempotent_and_releases(self, ziff, setup):
        from multiprocessing import shared_memory

        lat, _ = setup
        ex = ParallelChunkExecutor(ziff, lat, n_workers=1)
        name = ex._shm.name
        ex.close()
        ex.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestParallelPNDCA:
    def test_bit_identical_to_serial(self, ziff, setup):
        lat, p5 = setup
        serial = PNDCA(ziff, lat, seed=11, partition=p5, strategy="ordered")
        rs = serial.run(until=4.0)
        with ParallelChunkExecutor(ziff, lat, n_workers=3) as ex:
            par = ParallelPNDCA(
                ziff, lat, seed=11, partition=p5, strategy="ordered", executor=ex
            )
            rp = par.run(until=4.0)
        assert np.array_equal(rs.final_state.array, rp.final_state.array)
        assert rs.n_executed == rp.n_executed
        assert np.array_equal(rs.executed_per_type, rp.executed_per_type)
        assert rs.final_time == pytest.approx(rp.final_time)

    def test_result_survives_executor_close(self, ziff, setup):
        lat, p5 = setup
        with ParallelChunkExecutor(ziff, lat, n_workers=2) as ex:
            par = ParallelPNDCA(
                ziff, lat, seed=1, partition=p5, executor=ex
            )
            res = par.run(until=2.0)
        # shared memory is gone; the result's state must still be usable
        assert res.final_state.counts().sum() == lat.n_sites

    def test_requires_conflict_free(self, ziff, setup):
        from repro.partition import Partition

        lat, _ = setup
        bad = Partition.single_chunk(lat)
        with ParallelChunkExecutor(ziff, lat, n_workers=1) as ex:
            with pytest.raises(ValueError):
                ParallelPNDCA(
                    ziff, lat, seed=0, partition=bad, validate=False, executor=ex
                )

    def test_lattice_mismatch(self, ziff, setup):
        lat, p5 = setup
        with ParallelChunkExecutor(ziff, Lattice((20, 20)), n_workers=1) as ex:
            with pytest.raises(ValueError, match="different lattice"):
                ParallelPNDCA(ziff, lat, seed=0, partition=p5, executor=ex)

    def test_metrics_shared_and_bit_identical(self, ziff, setup):
        from repro.obs import MetricsCollector

        lat, p5 = setup
        serial = PNDCA(ziff, lat, seed=7, partition=p5, strategy="ordered")
        rs = serial.run(until=3.0)
        m = MetricsCollector()
        with ParallelChunkExecutor(ziff, lat, n_workers=2) as ex:
            par = ParallelPNDCA(
                ziff, lat, seed=7, partition=p5, strategy="ordered",
                executor=ex, metrics=m,
            )
            assert ex.metrics is m  # the run's collector is shared
            rp = par.run(until=3.0)
        # instrumentation must not perturb the trajectory
        assert np.array_equal(rs.final_state.array, rp.final_state.array)
        assert rs.n_executed == rp.n_executed
        snap = m.snapshot()
        assert snap.counters["trials.executed"] == rp.n_executed
        assert snap.counters["trials.attempted"] == rp.n_trials
        assert snap.counters["executor.chunks"] == snap.counters["pndca.chunk.visits"]
        # per-worker slice timings aggregated at the barrier: with 2
        # workers every non-trivial chunk contributes 2 slice timings
        assert (
            snap.histograms["executor.slice.wall"].count
            >= snap.histograms["executor.chunk.wall"].count
        )


class TestExecutorBackend:
    """The executor honours the selected kernel backend on every rung.

    Regression: the serial-degradation path used to call the
    module-level reference ``run_trials_batch`` directly — a degraded
    run silently switched kernel implementations mid-run.  It now
    dispatches through the executor's resolved backend, as the worker
    slices always did.
    """

    def test_serial_degradation_uses_selected_backend(self, ziff, setup):
        from repro.backends import Backend, register_backend
        from repro.backends import registry as _registry
        from repro.core.kernels import run_trials_batch as ref_batch

        calls = []

        class Sentinel(Backend):
            name = "sentinel-exec"
            tier = -1

            def kernels(self):
                def counting_batch(state, compiled, sites, types, counts=None):
                    calls.append(len(sites))
                    return ref_batch(state, compiled, sites, types, counts=counts)

                return {"run_trials_batch": counting_batch}

        register_backend(Sentinel())
        try:
            lat, p5 = setup
            with ParallelChunkExecutor(
                ziff, lat, n_workers=1, backend="sentinel-exec"
            ) as ex:
                assert ex.backend.name == "sentinel-exec"
                ex._degraded = True  # jump straight to the last rung
                t = ziff.type_index("CO_ads")
                chunk = p5.chunks[0]
                counts = ex.execute_chunk(
                    chunk, np.full(chunk.size, t, dtype=np.intp)
                )
                assert counts[t] == chunk.size
            # the regression: zero calls here meant the degraded rung
            # bypassed the backend and hard-coded the reference kernel
            assert calls == [chunk.size]
        finally:
            _registry._REGISTRY.pop("sentinel-exec", None)

    def test_degraded_run_bit_identical_across_backends(self, ziff, setup):
        from repro.backends import available_backends

        compiled = [n for n in available_backends() if n != "numpy"]
        if not compiled:
            pytest.skip("no compiled backend available")
        lat, p5 = setup
        serial = PNDCA(ziff, lat, seed=13, partition=p5, strategy="ordered")
        rs = serial.run(until=3.0)
        with ParallelChunkExecutor(
            ziff, lat, n_workers=2, backend=compiled[0]
        ) as ex:
            ex._degraded = True
            par = ParallelPNDCA(
                ziff, lat, seed=13, partition=p5, strategy="ordered", executor=ex
            )
            rp = par.run(until=3.0)
        assert np.array_equal(rs.final_state.array, rp.final_state.array)
        assert rs.n_executed == rp.n_executed

    def test_workers_resolve_backend_by_name(self, ziff, setup):
        """Parallel slices under a compiled backend stay bit-identical
        (the backend object itself is never pickled — only its name)."""
        from repro.backends import available_backends

        compiled = [n for n in available_backends() if n != "numpy"]
        if not compiled:
            pytest.skip("no compiled backend available")
        lat, p5 = setup
        serial = PNDCA(ziff, lat, seed=17, partition=p5, strategy="ordered")
        rs = serial.run(until=3.0)
        with ParallelChunkExecutor(
            ziff, lat, n_workers=3, backend=compiled[0]
        ) as ex:
            par = ParallelPNDCA(
                ziff, lat, seed=17, partition=p5, strategy="ordered", executor=ex
            )
            rp = par.run(until=3.0)
        assert np.array_equal(rs.final_state.array, rp.final_state.array)
        assert np.array_equal(rs.executed_per_type, rp.executed_per_type)
