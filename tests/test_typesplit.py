"""Unit tests for repro.partition.typesplit (Table II)."""

import numpy as np
import pytest

from repro.core import Model, ReactionType, oriented
from repro.partition.typesplit import split_by_orientation


class TestSplitZiff:
    def test_matches_table2(self, ziff):
        split = split_by_orientation(ziff)
        assert split.n_subsets == 2
        names0 = {ziff.reaction_types[i].name for i in split[0].type_indices}
        names1 = {ziff.reaction_types[i].name for i in split[1].type_indices}
        assert names0 == {"CO+O(0)", "CO+O(2)", "O2_ads(0)", "CO_ads"}
        assert names1 == {"CO+O(1)", "CO+O(3)", "O2_ads(1)"}

    def test_partitions_all_types(self, ziff):
        split = split_by_orientation(ziff)
        all_indices = sorted(
            i for s in split.subsets for i in s.type_indices
        )
        assert all_indices == list(range(ziff.n_types))

    def test_subset_rates(self, ziff):
        split = split_by_orientation(ziff)
        # T0: two CO+O (2.0 each) + O2(0.5) + CO(1.0) = 5.5
        assert split[0].total_rate == pytest.approx(5.5)
        assert split[1].total_rate == pytest.approx(4.5)
        assert split.total_rate == pytest.approx(ziff.total_rate)

    def test_subset_cum_selects_by_rate(self, ziff):
        split = split_by_orientation(ziff)
        rng = np.random.default_rng(0)
        draws = np.searchsorted(split.subset_cum, rng.random(20000), side="right")
        frac0 = (draws == 0).mean()
        assert frac0 == pytest.approx(5.5 / 10.0, abs=0.02)

    def test_describe_mentions_all(self, ziff):
        text = split_by_orientation(ziff).describe()
        for rt in ziff.reaction_types:
            assert rt.name in text


class TestSplitEdgeCases:
    def test_onsite_only_model(self):
        m = Model(["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 1.0)])
        split = split_by_orientation(m)
        assert split.n_subsets == 1
        assert split[0].type_indices == (0,)

    def test_three_site_pattern_rejected(self):
        rt = ReactionType(
            "tri",
            [((0, 0), "*", "A"), ((1, 0), "*", "A"), ((0, 1), "*", "A")],
            1.0,
        )
        m = Model(["*", "A"], [rt])
        with pytest.raises(ValueError, match="at most two sites"):
            split_by_orientation(m)

    def test_reversed_orientations_share_subset(self):
        rts = oriented(
            "hop", [((0, 0), "A", "*"), ((1, 0), "*", "A")], 1.0
        )
        m = Model(["*", "A"], rts)
        split = split_by_orientation(m)
        assert split.n_subsets == 2  # x-axis and y-axis
        for s in split.subsets:
            assert len(s) == 2  # the +v and -v variants together
