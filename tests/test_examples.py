"""Smoke tests for the runnable examples.

Only the fast example is executed end-to-end (the others run for
minutes and are exercised by the benchmark suite / documented runs);
for the rest we verify they at least import and expose ``main``.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_runs(self, capsys):
        mod = load_example("quickstart")
        mod.main()
        out = capsys.readouterr().out
        assert "coverage kinetics" in out
        assert "RSM on ziff" in out

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "exact_vs_dmc",
            "parallel_partitions",
            "pt100_oscillations",
            "ziff_phase_diagram",
            "custom_model",
        ],
    )
    def test_example_importable_with_main(self, name):
        mod = load_example(name)
        assert callable(mod.main)
