"""Unit tests for repro.core.species."""

import pytest

from repro.core.species import EMPTY, SpeciesRegistry


class TestRegistry:
    def test_registration_order(self):
        sp = SpeciesRegistry(["*", "CO", "O"])
        assert sp.code("*") == 0
        assert sp.code("CO") == 1
        assert sp.code("O") == 2
        assert sp.names == ("*", "CO", "O")

    def test_idempotent_register(self):
        sp = SpeciesRegistry()
        a = sp.register("A")
        assert sp.register("A") == a
        assert len(sp) == 1

    def test_name_lookup(self):
        sp = SpeciesRegistry(["*", "A"])
        assert sp.name(1) == "A"
        assert sp.name(0) == EMPTY

    def test_unknown_name_raises_with_context(self):
        sp = SpeciesRegistry(["*"])
        with pytest.raises(KeyError, match="unknown species 'X'"):
            sp.code("X")

    def test_unknown_code_raises(self):
        sp = SpeciesRegistry(["*"])
        with pytest.raises(KeyError):
            sp.name(3)

    def test_contains_and_iter(self):
        sp = SpeciesRegistry(["*", "A"])
        assert "A" in sp
        assert "B" not in sp
        assert list(sp) == ["*", "A"]

    def test_freeze_blocks_registration(self):
        sp = SpeciesRegistry(["*"]).freeze()
        assert sp.frozen
        with pytest.raises(RuntimeError, match="frozen"):
            sp.register("A")

    def test_freeze_allows_existing(self):
        sp = SpeciesRegistry(["*", "A"]).freeze()
        assert sp.register("A") == 1  # idempotent path still fine

    def test_invalid_names(self):
        sp = SpeciesRegistry()
        with pytest.raises(ValueError):
            sp.register("")
        with pytest.raises(ValueError):
            sp.register(3)  # type: ignore[arg-type]

    def test_encode_decode_roundtrip(self):
        sp = SpeciesRegistry(["*", "CO", "O"])
        codes = sp.encode(["O", "*", "CO"])
        assert codes.tolist() == [2, 0, 1]
        assert sp.decode(codes) == ["O", "*", "CO"]

    def test_encode_dtype(self):
        sp = SpeciesRegistry(["*", "A"])
        assert sp.encode(["A"]).dtype.name == "uint8"
