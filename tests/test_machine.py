"""Unit tests for the simulated parallel machine (Fig. 7 cost model)."""

import numpy as np
import pytest

from repro.parallel.machine import (
    DEFAULT_2003,
    MachineSpec,
    _equal_chunks,
    pndca_step_time,
    speedup,
    speedup_surface,
)


class TestSpec:
    def test_defaults_valid(self):
        assert DEFAULT_2003.t_trial > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(t_trial=0.0)
        with pytest.raises(ValueError):
            MachineSpec(t_latency=-1.0)
        with pytest.raises(ValueError):
            MachineSpec(acceptance=1.5)


class TestStepTime:
    def test_single_processor_is_pure_compute(self):
        spec = MachineSpec(t_trial=1e-6, t_latency=1e-4, t_update=1e-7)
        t = pndca_step_time(spec, [100, 100], p=1)
        assert t == pytest.approx(200 * 1e-6)

    def test_parallel_adds_overheads(self):
        spec = MachineSpec(t_trial=1e-6, t_latency=1e-4, t_update=1e-7, acceptance=0.5)
        t1 = pndca_step_time(spec, [100], p=1)
        t2 = pndca_step_time(spec, [100], p=2)
        # work halves (ceil(100/2)*t) but sync+comm are added
        assert t2 == pytest.approx(50e-6 + 1e-4 + 1e-7 * 0.5 * 100)
        assert t2 > t1 / 2

    def test_ceil_division(self):
        spec = MachineSpec(t_trial=1.0, t_latency=1e-9, t_update=1e-12)
        t = pndca_step_time(spec, [10], p=3)
        assert t >= 4.0  # ceil(10/3) = 4

    def test_p_validation(self):
        with pytest.raises(ValueError):
            pndca_step_time(DEFAULT_2003, [10], p=0)


class TestSpeedup:
    def test_p1_is_unity(self):
        assert speedup(DEFAULT_2003, 100 * 100, p=1) == pytest.approx(1.0)

    def test_bounded_by_p(self):
        for p in (2, 4, 8):
            assert speedup(DEFAULT_2003, 500 * 500, p) < p

    def test_monotone_in_lattice_size(self):
        s = [speedup(DEFAULT_2003, n * n, 8) for n in (200, 400, 800)]
        assert s[0] < s[1] < s[2]

    def test_fig7_shape(self):
        """The paper's qualitative claims about Fig. 7."""
        sides = [200, 400, 600, 800, 1000]
        ps = list(range(2, 11))
        surf = speedup_surface(DEFAULT_2003, sides, ps)
        # grows with N at fixed p
        assert (np.diff(surf, axis=0) >= -1e-9).all()
        # maximum at the largest (N, p), around 7-8 as in the paper
        assert surf.max() == surf[-1, -1]
        assert 6.5 <= surf[-1, -1] <= 8.5
        # saturating: the last p-increment gains less than the first
        gain_first = surf[-1, 1] - surf[-1, 0]
        gain_last = surf[-1, -1] - surf[-1, -2]
        assert gain_last < gain_first

    def test_too_many_chunks(self):
        with pytest.raises(ValueError):
            speedup(DEFAULT_2003, 3, p=2, m=5)


class TestEqualChunks:
    def test_divisible(self):
        assert _equal_chunks(100, 5).tolist() == [20] * 5

    def test_remainder_spread(self):
        sizes = _equal_chunks(103, 5)
        assert sizes.sum() == 103
        assert sizes.max() - sizes.min() == 1
