"""Cross-consistency checks between independent implementations.

Several quantities are computed by more than one code path; they must
agree exactly: enabled-rate totals (compiled scan vs VSSM bookkeeping),
mean-field generators (generic vs hand-written), kernels (sequential vs
batch — covered elsewhere), waiting-time accounting (trace vs result
counters).
"""

import numpy as np
import pytest

from repro.core import Lattice
from repro.dmc import RSM, VSSM


class TestEnabledRateConsistency:
    def test_compiled_scan_equals_vssm_bookkeeping(self, ziff):
        lat = Lattice((8, 8))
        sim = VSSM(ziff, lat, seed=2)
        sim.run(until=2.0)
        scan = sim.compiled.enabled_rate_total(sim.state.array)
        assert sim.total_enabled_rate() == pytest.approx(scan)

    def test_enabled_rate_decomposes_over_partition(self, ziff):
        from repro.partition import five_chunk_partition

        lat = Lattice((10, 10))
        comp = ziff.compile(lat)
        rng = np.random.default_rng(0)
        state = rng.integers(0, 3, lat.n_sites).astype(np.uint8)
        p5 = five_chunk_partition(lat)
        total = comp.enabled_rate_total(state)
        by_chunk = sum(
            comp.enabled_rate_total(state, c) for c in p5.chunks
        )
        assert by_chunk == pytest.approx(total)


class TestTraceConsistency:
    def test_trace_length_equals_executed_counter(self, ziff):
        sim = RSM(ziff, Lattice((8, 8)), seed=1, record_events=True)
        res = sim.run(until=3.0)
        assert len(res.events) == res.n_executed

    def test_trace_per_type_counts_match(self, ziff):
        sim = RSM(ziff, Lattice((8, 8)), seed=1, record_events=True)
        res = sim.run(until=3.0)
        from_trace = np.bincount(
            res.events.type_indices, minlength=ziff.n_types
        )
        assert np.array_equal(from_trace, res.executed_per_type)

    def test_trace_replay_reconstructs_final_state(self, ziff):
        """Replaying the recorded events against the initial state must
        land exactly on the final state — the trace is complete."""
        lat = Lattice((8, 8))
        sim = RSM(ziff, lat, seed=5, record_events=True)
        res = sim.run(until=2.0)
        comp = ziff.compile(lat)
        from repro.core import Configuration

        replay = Configuration.empty(lat, ziff.species)
        for t_idx, s in zip(
            res.events.type_indices.tolist(), res.events.sites.tolist()
        ):
            comp.execute(replay.array, t_idx, s)
        assert np.array_equal(replay.array, res.final_state.array)


class TestMeanFieldConsistency:
    def test_generic_equals_handwritten_pt100(self):
        from repro.analysis.meanfield import mean_field_rhs_for
        from repro.models import OSCILLATING, mean_field_rhs, pt100_model

        generic = mean_field_rhs_for(pt100_model())
        rng = np.random.default_rng(3)
        for _ in range(20):
            theta = rng.dirichlet(np.ones(5))
            assert np.allclose(
                generic(theta), mean_field_rhs(theta, OSCILLATING), atol=1e-10
            )

    def test_mean_field_fixed_point_is_simulation_steady_state(self):
        """For single-site chemistry (no correlations) the mean-field
        fixed point equals the lattice steady state."""
        from repro.analysis.meanfield import integrate_mean_field
        from repro.core import Model, ReactionType

        m = Model(
            ["*", "A"],
            [
                ReactionType("ads", [((0, 0), "*", "A")], 3.0),
                ReactionType("des", [((0, 0), "A", "*")], 1.0),
            ],
        )
        _, cov = integrate_mean_field(m, {"*": 1.0}, t_end=20.0)
        res = RSM(m, Lattice((30, 30)), seed=0).run(until=20.0)
        assert res.final_state.coverage("A") == pytest.approx(
            cov["A"][-1], abs=0.03
        )


class TestMCStepAccounting:
    def test_mc_steps_equivalence_across_algorithms(self, ziff):
        """One 'step' of every per-step algorithm is N trials — the MC
        step normalisation the paper uses to compare methods."""
        from repro.ca import NDCA, PNDCA
        from repro.partition import five_chunk_partition

        lat = Lattice((10, 10))
        p5 = five_chunk_partition(lat)
        p5.validate_conflict_free(ziff)
        for sim in (
            NDCA(ziff, lat, seed=0),
            PNDCA(ziff, lat, seed=0, partition=p5),
        ):
            sim._step_block(until=np.inf)
            assert sim.n_trials == lat.n_sites

    def test_rsm_mc_step_rate(self, ziff):
        # expected MC steps over horizon t is K * t
        lat = Lattice((10, 10))
        res = RSM(ziff, lat, seed=0).run(until=3.0)
        assert res.mc_steps == pytest.approx(ziff.total_rate * 3.0, rel=0.1)
