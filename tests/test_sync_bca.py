"""Unit tests for the synchronous CA (Fig. 2) and the Block CA (Fig. 3)."""

import numpy as np
import pytest

from repro.ca import BlockCA, ConflictError, SynchronousCA
from repro.core import Lattice
from repro.models import (
    FIG3_INITIAL,
    diffusion_model_2d,
    random_gas,
    zero_spreads_block_rule,
    zero_spreads_global,
)


class TestSynchronousCA:
    def _sim(self, policy, seed=0, density=0.4, side=12):
        model = diffusion_model_2d()
        lat = Lattice((side, side))
        initial = random_gas(lat, model, density, np.random.default_rng(seed))
        return SynchronousCA(
            model, lat, seed=seed, initial=initial, on_conflict=policy
        )

    def test_conflicts_detected(self):
        sim = self._sim("discard")
        sim.run(until=2.0)
        assert sim.conflict_rate() > 0.0
        assert len(sim.conflict_history) > 0

    def test_error_policy_raises(self):
        sim = self._sim("error")
        with pytest.raises(ConflictError, match="ill-defined"):
            sim.run(until=5.0)

    def test_discard_conserves_particles(self):
        sim = self._sim("discard")
        n0 = int(np.count_nonzero(sim.state.array))
        sim.run(until=3.0)
        assert int(np.count_nonzero(sim.state.array)) == n0

    def test_sequential_conserves_particles(self):
        sim = self._sim("sequential")
        n0 = int(np.count_nonzero(sim.state.array))
        sim.run(until=3.0)
        assert int(np.count_nonzero(sim.state.array)) == n0

    def test_invalid_policy(self):
        model = diffusion_model_2d()
        with pytest.raises(ValueError):
            SynchronousCA(model, Lattice((6, 6)), on_conflict="pray")

    def test_conflict_rate_grows_with_density(self):
        rates = []
        for rho in (0.1, 0.6):
            sim = self._sim("discard", density=rho)
            sim.run(until=2.0)
            rates.append(sim.conflict_rate())
        assert rates[1] > rates[0]


class TestBlockCA:
    def test_fig3_first_step(self):
        lat = Lattice((9,))
        bca = BlockCA(lat, (3,), zero_spreads_block_rule)
        state = FIG3_INITIAL.copy()
        bca.step(state)
        # the paper's second row
        assert state.tolist() == [0, 0, 1, 1, 1, 1, 0, 0, 1]

    def test_fig3_second_step_uses_shifted_blocks(self):
        lat = Lattice((9,))
        bca = BlockCA(lat, (3,), zero_spreads_block_rule)
        state = FIG3_INITIAL.copy()
        bca.step(state)
        bca.step(state)
        # blocks {1,2,3}, {4,5,6}, {7,8,0} applied to row 2
        assert state.tolist() == [0, 0, 0, 1, 1, 0, 0, 0, 0]

    def test_zeros_eventually_everywhere(self):
        lat = Lattice((9,))
        bca = BlockCA(lat, (3,), zero_spreads_block_rule)
        state = FIG3_INITIAL.copy()
        bca.run(state, 6)
        assert not state.any()

    def test_all_ones_is_fixpoint(self):
        lat = Lattice((9,))
        bca = BlockCA(lat, (3,), zero_spreads_block_rule)
        state = np.ones(9, dtype=np.uint8)
        bca.run(state, 4)
        assert state.all()

    def test_shift_schedule_cycles(self):
        bca = BlockCA(Lattice((9,)), (3,), zero_spreads_block_rule)
        state = np.ones(9, dtype=np.uint8)
        seen = []
        for _ in range(4):
            seen.append(bca.current_shift())
            bca.step(state)
        assert seen == [(0,), (1,), (2,), (0,)]

    def test_divisibility_validation(self):
        with pytest.raises(ValueError):
            BlockCA(Lattice((10,)), (3,), zero_spreads_block_rule)

    def test_2d_blocks_roundtrip(self):
        # identity rule: state unchanged regardless of block reshaping
        lat = Lattice((6, 4))
        bca = BlockCA(lat, (2, 2), lambda blocks, rng: blocks)
        state = np.arange(24, dtype=np.uint8)
        original = state.copy()
        bca.run(state, 4)
        assert np.array_equal(state, original)

    def test_rule_shape_validated(self):
        bca = BlockCA(Lattice((9,)), (3,), lambda b, rng: b[:1])
        with pytest.raises(ValueError, match="shape"):
            bca.step(np.ones(9, dtype=np.uint8))


class TestGlobalRule:
    def test_matches_manual(self):
        out = zero_spreads_global(np.array([0, 1, 1, 1]))
        assert out.tolist() == [0, 0, 1, 0]  # periodic: site 3 sees site 0

    def test_all_ones_fixpoint(self):
        state = np.ones(5, dtype=int)
        assert zero_spreads_global(state).tolist() == [1] * 5
