"""Unit tests for repro.core.rates."""

import math

import numpy as np
import pytest

from repro.core.rates import BOLTZMANN_EV, ArrheniusRate, arrhenius, selection_table


class TestArrhenius:
    def test_zero_barrier_gives_prefactor(self):
        assert arrhenius(1e13, 0.0, 300.0) == pytest.approx(1e13)

    def test_value(self):
        k = arrhenius(1e13, 1.0, 300.0)
        assert k == pytest.approx(1e13 * math.exp(-1.0 / (BOLTZMANN_EV * 300.0)))

    def test_monotone_in_temperature(self):
        assert arrhenius(1.0, 0.5, 400.0) > arrhenius(1.0, 0.5, 300.0)

    def test_monotone_in_barrier(self):
        assert arrhenius(1.0, 0.2, 300.0) > arrhenius(1.0, 0.4, 300.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            arrhenius(0.0, 1.0, 300.0)
        with pytest.raises(ValueError):
            arrhenius(1.0, -0.1, 300.0)
        with pytest.raises(ValueError):
            arrhenius(1.0, 1.0, 0.0)

    def test_dataclass_wrapper(self):
        r = ArrheniusRate(nu=2.0, activation_energy=0.0)
        assert r.at(500.0) == pytest.approx(2.0)


class TestSelectionTable:
    def test_cumulative_normalised(self):
        cum, total = selection_table(np.array([1.0, 3.0]))
        assert total == 4.0
        assert cum.tolist() == [0.25, 1.0]

    def test_last_entry_exactly_one(self):
        cum, _ = selection_table(np.array([0.1] * 7))
        assert cum[-1] == 1.0

    def test_selection_probabilities(self):
        rng = np.random.default_rng(0)
        cum, _ = selection_table(np.array([1.0, 1.0, 2.0]))
        draws = np.searchsorted(cum, rng.random(40000), side="right")
        freq = np.bincount(draws, minlength=3) / 40000
        assert freq == pytest.approx([0.25, 0.25, 0.5], abs=0.02)

    def test_zero_rate_entry_never_selected(self):
        rng = np.random.default_rng(1)
        cum, _ = selection_table(np.array([1.0, 0.0, 1.0]))
        draws = np.searchsorted(cum, rng.random(10000), side="right")
        assert not np.any(draws == 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            selection_table(np.array([]))
        with pytest.raises(ValueError):
            selection_table(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            selection_table(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            selection_table(np.ones((2, 2)))
