"""Tests for the ASCII time-lapse renderer."""

import numpy as np
import pytest

from repro.core import Lattice
from repro.core.species import SpeciesRegistry
from repro.io.animation import default_symbols, render_frames, side_by_side


@pytest.fixture
def sp():
    return SpeciesRegistry(["*", "CO", "O"]).freeze()


class TestSymbols:
    def test_vacant_is_dot(self, sp):
        assert default_symbols(sp)["*"] == "."

    def test_unique_characters(self):
        sp = SpeciesRegistry(["*", "CO", "C", "Cl"]).freeze()
        syms = default_symbols(sp)
        assert len(set(syms.values())) == len(syms)


class TestRenderFrames:
    def test_basic(self, sp):
        lat = Lattice((2, 3))
        snaps = np.array([[0, 1, 2, 0, 0, 0], [1, 1, 1, 2, 2, 2]], dtype=np.uint8)
        frames = render_frames(lat, sp, snaps, times=[0.0, 1.0])
        assert len(frames) == 2
        assert frames[0] == "t = 0\n.CO\n..."
        assert frames[1].startswith("t = 1\nCCC")

    def test_max_frames_downsampling(self, sp):
        lat = Lattice((2, 2))
        snaps = np.zeros((10, 4), dtype=np.uint8)
        frames = render_frames(lat, sp, snaps, max_frames=3)
        assert len(frames) == 3

    def test_1d(self, sp):
        lat = Lattice((4,))
        snaps = np.array([[0, 1, 0, 2]], dtype=np.uint8)
        frames = render_frames(lat, sp, snaps)
        assert frames[0].splitlines()[1] == ".C.O"

    def test_shape_validation(self, sp):
        lat = Lattice((2, 2))
        with pytest.raises(ValueError):
            render_frames(lat, sp, np.zeros((2, 5), dtype=np.uint8))
        with pytest.raises(ValueError):
            render_frames(lat, sp, np.zeros((2, 4), dtype=np.uint8), times=[0.0])

    def test_from_snapshot_observer(self, ziff):
        from repro.dmc import RSM, SnapshotObserver

        lat = Lattice((6, 6))
        obs = SnapshotObserver(1.0)
        RSM(ziff, lat, seed=0, observers=[obs]).run(until=3.0)
        data = obs.data()
        frames = render_frames(
            lat, ziff.species, data["snapshots"], data["snapshot_times"]
        )
        assert frames[0].splitlines()[1] == "......"  # empty start


class TestSideBySide:
    def test_layout(self):
        out = side_by_side(["a\nbb", "ccc"])
        lines = out.splitlines()
        assert lines[0] == "a    ccc"
        assert lines[1] == "bb"

    def test_empty(self):
        assert side_by_side([]) == ""
