"""Tests for conservation-law analysis."""

import pytest

from repro.core import Lattice, Model, ReactionType, conserved_quantities, is_conserved
from repro.core.conservation import (
    check_trajectory_conservation,
    stoichiometry_matrix,
)
from repro.dmc import RSM, SnapshotObserver
from repro.models import diffusion_model_2d, pt100_model


class TestStoichiometry:
    def test_adsorption(self):
        m = Model(["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 1.0)])
        s = stoichiometry_matrix(m)
        assert s.tolist() == [[-1, 1]]

    def test_pair_reaction(self, ziff):
        s = stoichiometry_matrix(ziff)
        co_o = s[ziff.type_index("CO+O(0)")]
        # CO+O -> 2 vacancies: *(+2), CO(-1), O(-1)
        assert co_o.tolist() == [2, -1, -1]
        o2 = s[ziff.type_index("O2_ads(0)")]
        assert o2.tolist() == [-2, 0, 2]

    def test_diffusion_is_null_row(self):
        m = diffusion_model_2d()
        s = stoichiometry_matrix(m)
        assert not s.any()


class TestConservedQuantities:
    def test_total_sites_always_conserved(self, ziff):
        assert is_conserved(ziff, {"*": 1, "CO": 1, "O": 1})

    def test_diffusion_conserves_everything(self):
        m = diffusion_model_2d()
        basis = conserved_quantities(m)
        assert len(basis) == 2  # both species counts independently
        assert is_conserved(m, {"A": 1})
        assert is_conserved(m, {"*": 1})

    def test_ziff_conserves_only_total(self, ziff):
        basis = conserved_quantities(ziff)
        assert len(basis) == 1
        v = basis[0]
        assert v["*"] == v["CO"] == v["O"] != 0

    def test_ziff_particle_number_not_conserved(self, ziff):
        assert not is_conserved(ziff, {"CO": 1, "O": 1})

    def test_pt100_conserves_only_total(self):
        m = pt100_model()
        basis = conserved_quantities(m)
        assert len(basis) == 1
        vals = set(basis[0].values())
        assert vals == {1}

    def test_custom_combination(self):
        # A <-> B flip conserves A + B
        m = Model(
            ["A", "B"],
            [
                ReactionType("a2b", [((0, 0), "A", "B")], 1.0),
                ReactionType("b2a", [((0, 0), "B", "A")], 2.0),
            ],
        )
        assert is_conserved(m, {"A": 1, "B": 1})
        assert not is_conserved(m, {"A": 1})


class TestTrajectoryChecks:
    def test_diffusion_trajectory(self, rng):
        from repro.models import random_gas

        m = diffusion_model_2d()
        lat = Lattice((10, 10))
        initial = random_gas(lat, m, 0.4, rng)
        obs = SnapshotObserver(0.5)
        sim = RSM(m, lat, seed=0, initial=initial, observers=[obs])
        sim.run(until=3.0)
        snaps = list(obs.data()["snapshots"])
        assert check_trajectory_conservation(m, snaps, {"A": 1})
        assert check_trajectory_conservation(m, snaps, {"*": 2, "A": 2})

    def test_detects_violation(self, ziff):
        lat = Lattice((8, 8))
        obs = SnapshotObserver(0.5)
        sim = RSM(ziff, lat, seed=0, observers=[obs])
        sim.run(until=3.0)
        snaps = list(obs.data()["snapshots"])
        # CO count is NOT conserved in the Ziff model
        assert not check_trajectory_conservation(ziff, snaps, {"CO": 1})
        # total sites are
        assert check_trajectory_conservation(
            ziff, snaps, {"*": 1, "CO": 1, "O": 1}
        )

    def test_empty_states_rejected(self, ziff):
        with pytest.raises(ValueError):
            check_trajectory_conservation(ziff, [], {"CO": 1})


class TestEverySimulatorKeepsInvariants:
    """Conservation is the sharpest cross-simulator correctness probe."""

    @pytest.mark.parametrize(
        "algorithm", ["rsm", "ndca", "pndca", "lpndca", "typepart"]
    )
    def test_diffusion_particle_count(self, algorithm, rng):
        from repro.models import random_gas
        from repro.partition import five_chunk_partition
        from repro.taxonomy import make_simulator

        m = diffusion_model_2d()
        lat = Lattice((10, 10))
        initial = random_gas(lat, m, 0.35, rng)
        n0 = int(initial.counts()[1])
        kwargs: dict = {"seed": 3, "initial": initial}
        if algorithm in ("pndca", "lpndca"):
            p = five_chunk_partition(lat)
            p.validate_conflict_free(m)
            kwargs["partition"] = p
        sim = make_simulator(algorithm, m, lat, **kwargs)
        res = sim.run(until=3.0)
        assert int(res.final_state.counts()[1]) == n0, algorithm
