"""Unit tests for PNDCA — the paper's central algorithm."""

import numpy as np
import pytest

from repro.ca import PNDCA, STRATEGIES
from repro.core import Lattice
from repro.dmc import RSM, CoverageObserver
from repro.partition import Partition, five_chunk_partition


@pytest.fixture
def p5(ziff, small_lattice):
    p = five_chunk_partition(small_lattice)
    p.validate_conflict_free(ziff)
    return p


class TestConstruction:
    def test_validates_partition_by_default(self, ziff, small_lattice):
        bad = Partition.single_chunk(small_lattice)
        with pytest.raises(ValueError, match="non-overlap"):
            PNDCA(ziff, small_lattice, partition=bad)

    def test_fallback_when_not_validated(self, ziff, small_lattice):
        bad = Partition.single_chunk(small_lattice)
        sim = PNDCA(ziff, small_lattice, partition=bad, validate=False)
        assert sim.uses_sequential_fallback

    def test_vectorised_when_conflict_free(self, ziff, small_lattice, p5):
        sim = PNDCA(ziff, small_lattice, partition=p5)
        assert not sim.uses_sequential_fallback

    def test_unknown_strategy(self, ziff, small_lattice, p5):
        with pytest.raises(ValueError, match="strategy"):
            PNDCA(ziff, small_lattice, partition=p5, strategy="zigzag")

    def test_partition_lattice_mismatch(self, ziff, small_lattice):
        other = five_chunk_partition(Lattice((15, 15)))
        with pytest.raises(ValueError, match="different lattice"):
            PNDCA(ziff, small_lattice, partition=other)

    def test_algorithm_label(self, ziff, small_lattice, p5):
        sim = PNDCA(ziff, small_lattice, partition=p5, strategy="ordered")
        assert "ordered" in sim.algorithm and "m=5" in sim.algorithm


class TestStepAccounting:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_n_trials_per_step(self, ziff, small_lattice, p5, strategy):
        sim = PNDCA(ziff, small_lattice, partition=p5, strategy=strategy, seed=0)
        sim._step_block(until=np.inf)
        # every strategy performs m chunk visits of |Pi| trials each;
        # for equal chunks that is exactly N trials per step
        assert sim.n_trials == small_lattice.n_sites

    def test_reproducible(self, ziff, small_lattice, p5):
        a = PNDCA(ziff, small_lattice, partition=p5, seed=4).run(until=5.0)
        b = PNDCA(ziff, small_lattice, partition=p5, seed=4).run(until=5.0)
        assert np.array_equal(a.final_state.array, b.final_state.array)

    def test_time_advances_per_chunk(self, ziff, small_lattice, p5):
        sim = PNDCA(ziff, small_lattice, partition=p5, seed=0,
                    time_mode="deterministic")
        sim._step_block(until=np.inf)
        nk = small_lattice.n_sites * ziff.total_rate
        assert sim.time == pytest.approx(small_lattice.n_sites / nk)


class TestSequentialVsVectorisedEquivalence:
    def test_fallback_equals_batch_statistics(self, ziff, small_lattice, p5):
        # same partition run through both kernels (validated flag off ->
        # sequential); executed counts must agree statistically
        a = PNDCA(ziff, small_lattice, partition=p5, seed=1, strategy="ordered")
        res_a = a.run(until=5.0)
        b = PNDCA(ziff, small_lattice, partition=p5, seed=1, strategy="ordered")
        b.uses_sequential_fallback = True
        res_b = b.run(until=5.0)
        # identical rng stream: the trials are identical, and within a
        # conflict-free chunk execution order cannot matter
        assert np.array_equal(res_a.final_state.array, res_b.final_state.array)
        assert res_a.n_executed == res_b.n_executed


class TestKinetics:
    def test_tracks_rsm_coverage(self, ziff):
        lat = Lattice((20, 20))
        p = five_chunk_partition(lat)
        p.validate_conflict_free(ziff)
        obs = lambda: CoverageObserver(1.0, species=("O", "CO"))
        r_rsm = RSM(ziff, lat, seed=0, observers=[obs()]).run(until=6.0)
        r_ca = PNDCA(ziff, lat, seed=1, partition=p, observers=[obs()]).run(until=6.0)
        # both poison toward O in this rate regime; transient coverage
        # should agree within stochastic scatter
        dev = np.abs(r_rsm.coverage["O"] - r_ca.coverage["O"]).max()
        assert dev < 0.15

    def test_weighted_strategy_runs(self, ziff, small_lattice, p5):
        res = PNDCA(
            ziff, small_lattice, partition=p5, strategy="weighted", seed=2
        ).run(until=2.0)
        assert res.n_executed > 0
