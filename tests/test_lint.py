"""Tests for repro.lint — the static conflict/race proof engine."""

import numpy as np
import pytest

from repro.core import Lattice, Model, ReactionType
from repro.lint import (
    CODES,
    Diagnostic,
    LintError,
    LintReport,
    audit_draws,
    check_tiling_on_shape,
    conflict_witnesses,
    lint_model,
    lint_partition,
    preflight_model,
    preflight_partition,
    prove_tiling,
    run_lint,
    tiling_conflicts_on_shape,
)
from repro.lint.rng_lint import audit_events, collect_draws, collect_draws_source
from repro.partition import Partition, five_chunk_partition
from repro.partition.partition import conflict_displacements
from repro.partition.tilings import modular_tiling


# ----------------------------------------------------------------------
# diagnostics plumbing
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_codes_are_stable_and_classified(self):
        for code, (sev, slug, desc) in CODES.items():
            assert code.startswith("SR") and len(code) == 5
            assert sev in ("error", "warning", "info")
            assert slug and desc

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic(code="SR999", subject="x", message="y")

    def test_report_verdicts(self):
        r = LintReport()
        assert r.ok() and r.ok(strict=True)
        r.add(Diagnostic(code="SR011", subject="m", message="dead"))
        assert r.ok() and not r.ok(strict=True)
        r.add(Diagnostic(code="SR001", subject="p", message="conflict"))
        assert not r.ok()
        assert len(r.errors) == 1 and len(r.warnings) == 1

    def test_render_and_json(self):
        r = LintReport([Diagnostic(code="SR003", subject="p", message="boom")])
        r.note("checked")
        text = r.render()
        assert "SR003" in text and "checked" in text and "1 error(s)" in text
        assert '"SR003"' in r.to_json()


# ----------------------------------------------------------------------
# offset algebra
# ----------------------------------------------------------------------
class TestOffsets:
    def test_witness_set_matches_difference_set(self, ziff):
        ws = conflict_witnesses(ziff)
        expected = set(conflict_displacements(ziff.union_neighborhood()))
        assert set(ws) == expected

    def test_witnesses_realise_their_displacement(self, ziff):
        for d, w in conflict_witnesses(ziff).items():
            assert tuple(a - b for a, b in zip(w.offset_a, w.offset_b)) == d

    def test_witnesses_deterministic(self, ziff):
        assert conflict_witnesses(ziff) == conflict_witnesses(ziff)


# ----------------------------------------------------------------------
# the symbolic race detector
# ----------------------------------------------------------------------
class TestSymbolicProof:
    def test_five_chunk_proof_for_all_aligned_sizes(self, ziff):
        """Acceptance: Fig. 4 tiling proven without lattice enumeration."""
        proof, bad = prove_tiling(ziff, 5, (1, 2))
        assert proof is not None and bad == []
        assert proof.aligned_moduli == (5, 5)
        assert "ALL periodic lattices" in proof.statement()

    def test_all_four_optimal_tilings_prove(self, ziff):
        for coeffs in ((1, 2), (2, 1), (1, 3), (3, 1)):
            proof, _ = prove_tiling(ziff, 5, coeffs)
            assert proof is not None, coeffs

    def test_checkerboard_refuted_with_counterexample(self, ziff):
        """Acceptance: broken partition yields a concrete counterexample."""
        proof, bad = prove_tiling(ziff, 2, (1, 1))
        assert proof is None and bad
        c = bad[0]
        # the counterexample is internally consistent: both reactions
        # touch the same cell
        cell_a = tuple(s + a for s, a in zip(c.site_s, c.offset_a))
        cell_b = tuple(t + b for t, b in zip(c.site_t, c.offset_b))
        assert cell_a == cell_b == c.cell

    def test_mod5_on_7x7_wrap_conflict(self, ziff):
        """Acceptance: misaligned shape flagged with site-level witness."""
        report = check_tiling_on_shape(ziff, 5, (1, 2), (7, 7))
        assert not report.ok()
        codes = {d.code for d in report}
        assert codes == {"SR002"}  # pure wrap artefact, not a residue bug
        c = report.diagnostics[0].data
        # cross-validate the witness against the actual labelling
        lab = lambda x: (x[0] + 2 * x[1]) % 5
        assert lab(c["site_s"]) == lab(c["site_t"])

    def test_mod5_on_10x10_clean(self, ziff):
        report = check_tiling_on_shape(ziff, 5, (1, 2), (10, 10))
        assert report.ok() and not report.diagnostics

    def test_checkerboard_classified_residue_not_wrap(self, ziff):
        report = check_tiling_on_shape(ziff, 2, (1, 1), (10, 10))
        assert {d.code for d in report} == {"SR001"}

    @pytest.mark.parametrize("shape", [(7, 7), (8, 9), (5, 7), (6, 10), (10, 10), (15, 5)])
    def test_symbolic_matches_enumeration(self, ziff, shape):
        """Differential: borrow analysis == brute-force site scan."""
        m, coeffs = 5, (1, 2)
        lat = Lattice(shape)
        labels = np.array(
            [(coeffs[0] * i + coeffs[1] * j) % m for i, j in lat.sites()]
        )
        brute = False
        for d in conflict_displacements(ziff.union_neighborhood()):
            nbr = lat.neighbor_map(d)
            if (
                (labels == labels[nbr]) & (nbr != np.arange(lat.n_sites))
            ).any():
                brute = True
                break
        symbolic = bool(tiling_conflicts_on_shape(ziff, m, coeffs, shape))
        assert symbolic == brute, shape

    def test_1d_tiling(self):
        hop = Model(
            ["*", "A"],
            [ReactionType("hop", [((0,), "A", "*"), ((1,), "*", "A")], 1.0)],
            name="hop-1d",
        )
        # alternating colours separate 1-d pair patterns...
        proof, _ = prove_tiling(hop, 2, (1,))
        assert proof is not None
        # ...but an even coefficient degenerates every residue to 0
        proof2, bad2 = prove_tiling(hop, 2, (2,))
        assert proof2 is None and bad2
        # and an odd ring breaks the alternation at the wrap
        conflicts = tiling_conflicts_on_shape(hop, 2, (1,), (5,))
        assert conflicts
        assert conflicts[0].site_s != conflicts[0].site_t

    def test_dimension_mismatch_rejected(self, ziff):
        with pytest.raises(ValueError, match="coefficients"):
            prove_tiling(ziff, 5, (1,))
        with pytest.raises(ValueError, match="shape"):
            tiling_conflicts_on_shape(ziff, 5, (1, 2), (7,))


# ----------------------------------------------------------------------
# Partition.find_conflicts / check_conflict_free
# ----------------------------------------------------------------------
class TestFindConflicts:
    def test_symbolic_delegation_on_tiling_partitions(self, ziff):
        p = five_chunk_partition(Lattice((10, 10)))
        assert p.tiling is not None
        assert p.find_conflicts(ziff) == []

    def test_symbolic_and_enumerative_agree_on_7x7(self, ziff):
        p = five_chunk_partition(Lattice((7, 7)))
        symbolic = p.find_conflicts(ziff)
        assert symbolic
        # strip the metadata and rerun through the enumerative path
        p.tiling = None
        enumerative = p.find_conflicts(ziff)
        assert enumerative
        # both agree the partition is broken; chunks come from labels
        for c in symbolic:
            lab = lambda x: (x[0] + 2 * x[1]) % 5
            assert lab(c.site_s) == lab(c.site_t)

    def test_collects_multiple_conflicts_bounded(self, ziff):
        p = Partition.single_chunk(Lattice((10, 10)))
        conflicts = p.find_conflicts(ziff, limit=5)
        assert len(conflicts) == 5
        ok, reason = p.check_conflict_free(ziff)
        assert not ok
        # bounded multi-conflict report, not just the first pair
        assert "16 conflict(s)" in reason and "truncated" in reason

    def test_conflict_attribution(self, ziff):
        p = Partition.single_chunk(Lattice((10, 10)))
        c = p.find_conflicts(ziff, limit=1)[0]
        names = {rt.name for rt in ziff.reaction_types}
        assert c.reaction_a in names and c.reaction_b in names
        assert c.site_s != c.site_t
        assert c.chunk == 0

    def test_clean_partition_reports_ok(self, ziff):
        p = five_chunk_partition(Lattice((10, 10)))
        ok, reason = p.check_conflict_free(ziff)
        assert ok and reason == "ok"


# ----------------------------------------------------------------------
# model sanity pass
# ----------------------------------------------------------------------
class TestModelLint:
    def test_ziff_clean(self, ziff):
        report = lint_model(ziff)
        assert report.ok(strict=True)

    def test_probability_mass_violation(self, ziff):
        report = lint_model(ziff, dt=1.0)  # K = 3.5 > 1 per site
        assert report.by_code("SR010")
        assert not report.ok()

    def test_canonical_dt_saturates_mass(self, ziff):
        report = lint_model(ziff, dt=1.0 / ziff.total_rate)
        assert not report.by_code("SR010")

    def test_dead_reaction_and_unreachable_species(self):
        m = Model(
            ["*", "A", "B"],
            [
                ReactionType("ads", [((0, 0), "*", "A")], 1.0),
                ReactionType("ghost", [((0, 0), "B", "*")], 1.0),
            ],
        )
        report = lint_model(m)
        assert {d.data["reaction"] for d in report.by_code("SR011")} == {"ghost"}
        assert {d.data["species"] for d in report.by_code("SR012")} == {"B"}
        assert report.ok()  # warnings only
        assert not report.ok(strict=True)

    def test_initial_species_unlock_reachability(self):
        m = Model(["*", "A"], [ReactionType("des", [((0,), "A", "*")], 1.0)])
        assert not lint_model(m, initial_species=["*", "A"]).diagnostics
        assert lint_model(m).by_code("SR011")

    def test_null_reaction(self):
        m = Model(["*", "A"], [ReactionType("noop", [((0,), "*", "*")], 1.0)])
        assert lint_model(m).by_code("SR013")

    def test_duplicate_reaction(self):
        m = Model(
            ["*", "A"],
            [
                ReactionType("ads1", [((0,), "*", "A")], 1.0),
                ReactionType("ads2", [((0,), "*", "A")], 2.0),
            ],
        )
        dupes = lint_model(m).by_code("SR016")
        assert len(dupes) == 1
        assert dupes[0].data["reactions"] == ["ads1", "ads2"]

    def test_conservation_law_checked(self, ziff):
        good = {"*": 1, "CO": 1, "O": 1}
        bad = {"*": 1, "CO": 2, "O": 1}
        assert not lint_model(ziff, conserved=[good]).by_code("SR014")
        assert lint_model(ziff, conserved=[bad]).by_code("SR014")

    def test_unknown_initial_species_rejected(self, ziff):
        with pytest.raises(ValueError, match="not in model domain"):
            lint_model(ziff, initial_species=["X"])


# ----------------------------------------------------------------------
# RNG draw-accounting audit
# ----------------------------------------------------------------------
class TestRngAudit:
    def test_repo_kernels_clean(self):
        """The shipped sequential/ensemble pairs honour the contract."""
        report = audit_draws()
        assert report.ok(strict=True), report.render()
        assert len(report.notes) == 3  # one per audited pair

    def test_collect_draws_sees_streams(self):
        from repro.ensemble.pndca import EnsemblePNDCA

        events = collect_draws(EnsemblePNDCA)
        streams = {e.stream for e in events}
        assert streams == {"replica", "schedule"}

    def test_alias_resolution(self):
        events = collect_draws_source(
            """
            class Ens:
                def step(self):
                    for r in range(2):
                        rng = self.rngs[r]
                        rng.random(3)
            """
        )
        assert [(e.kind, e.stream) for e in events] == [("random", "replica")]

    def test_helper_calls_mapped_to_kinds(self):
        events = collect_draws_source(
            """
            class Seq:
                def step(self):
                    u = draw_types(self.rng, 5)
                    s = draw_sites(self.rng, 5, 100)
            """
        )
        assert {e.kind for e in events} == {"random", "integers"}

    def test_unrelated_calls_ignored(self):
        events = collect_draws_source(
            """
            class Seq:
                def step(self):
                    np.random.permutation(5)   # module-level: not a stream
                    other.choice(3)            # unknown receiver
                    self.rng.bit_generator     # not a draw
            """
        )
        assert events == []

    def test_synthetic_extra_draw_flagged(self):
        seq = collect_draws_source(
            """
            class Seq:
                def step(self):
                    self.rng.random(3)
            """
        )
        ens = collect_draws_source(
            """
            class Ens:
                def step(self):
                    for r in range(2):
                        rng = self.rngs[r]
                        rng.random(3)
                        rng.integers(0, 5)  # extra draw: desynchronises
            """
        )
        report = audit_events(seq, ens)
        assert [d.code for d in report.errors] == ["SR030"]
        assert report.errors[0].data["kind"] == "integers"

    def test_synthetic_schedule_on_replica_stream(self):
        seq = collect_draws_source(
            """
            class Seq:
                def step(self):
                    self.rng.permutation(5)
                    self.rng.random(3)
            """
        )
        ens = collect_draws_source(
            """
            class Ens:
                def step(self):
                    self.rngs[0].permutation(5)  # must be schedule_rng
                    self.rngs[0].random(3)
            """
        )
        report = audit_events(seq, ens, schedule_kinds=frozenset({"permutation"}))
        codes = sorted(d.code for d in report.diagnostics)
        assert "SR031" in codes  # wrong stream
        assert "SR032" in codes  # schedule stream never draws it

    def test_synthetic_missing_draw_warns(self):
        seq = collect_draws_source(
            """
            class Seq:
                def step(self):
                    self.rng.random(3)
                    self.rng.gamma(4.0)
            """
        )
        ens = collect_draws_source(
            """
            class Ens:
                def step(self):
                    self.rngs[0].random(3)
            """
        )
        report = audit_events(seq, ens)
        assert [d.code for d in report.warnings] == ["SR032"]
        assert report.ok()  # warning, not error

    def test_optional_kinds_suppress_missing(self):
        seq = collect_draws_source(
            """
            class Seq:
                def step(self):
                    self.rng.choice(5)
            """
        )
        report = audit_events(seq, [], optional_kinds=frozenset({"choice"}))
        assert report.ok(strict=True)


# ----------------------------------------------------------------------
# preflight gates
# ----------------------------------------------------------------------
class TestPreflight:
    def test_partition_gate_raises_lint_error(self, ziff, small_lattice):
        bad = Partition.single_chunk(small_lattice)
        with pytest.raises(LintError) as exc:
            preflight_partition(bad, ziff)
        assert exc.value.report.errors
        assert "non-overlap" in str(exc.value)

    def test_lint_error_is_value_error(self):
        assert issubclass(LintError, ValueError)

    def test_partition_gate_marks_and_caches(self, ziff, small_lattice):
        p = five_chunk_partition(small_lattice)
        preflight_partition(p, ziff)
        assert p.is_conflict_free(ziff)
        # second call short-circuits on the cache
        assert len(preflight_partition(p, ziff)) == 0

    def test_model_gate_passes_warnings(self):
        m = Model(
            ["*", "A", "B"],
            [
                ReactionType("ads", [((0,), "*", "A")], 1.0),
                ReactionType("ghost", [((0,), "B", "*")], 1.0),
            ],
        )
        report = preflight_model(m)  # warnings don't block
        assert report.warnings

    def test_model_gate_raises_on_error(self, ziff):
        with pytest.raises(LintError, match="SR010"):
            preflight_model(ziff, dt=1.0)

    def test_pndca_constructor_uses_gate(self, ziff, small_lattice):
        from repro.ca import PNDCA

        bad = Partition.single_chunk(small_lattice)
        with pytest.raises(LintError):
            PNDCA(ziff, small_lattice, partition=bad)

    def test_ensemble_constructor_uses_gate(self, ziff, small_lattice):
        from repro.ensemble import EnsemblePNDCA

        bad = Partition.single_chunk(small_lattice)
        with pytest.raises(LintError):
            EnsemblePNDCA(ziff, small_lattice, n_replicas=2, partition=bad)


# ----------------------------------------------------------------------
# orchestration + CLI
# ----------------------------------------------------------------------
class TestRunLint:
    def test_full_report_for_ziff(self, ziff):
        report = run_lint(ziff, tiling=(5, (1, 2)), rng_audit=True)
        assert report.ok(strict=True)
        assert any("proof" in n for n in report.notes)

    def test_tiling_refutation_reported(self, ziff):
        report = run_lint(ziff, tiling=(2, (1, 1)))
        assert report.by_code("SR001")

    def test_shape_specialisation(self, ziff):
        report = run_lint(ziff, tiling=(5, (1, 2)), shape=(7, 7))
        assert report.by_code("SR002")

    def test_partition_lint_with_bounds(self, ziff):
        p = modular_tiling(Lattice((10, 10)), 10, (1, 2))
        report = lint_partition(p, ziff, bounds=True)
        assert report.ok()  # conflict-free, but...
        assert report.by_code("SR004")  # ...more chunks than needed


class TestCli:
    def test_lint_command_clean(self, capsys):
        from repro.__main__ import main

        rc = main(["lint", "--model", "ziff"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "proof" in out and "conflict-free" in out

    def test_lint_command_broken_shape(self, capsys):
        """Acceptance: CLI reports SR002 counterexample, exit code 1."""
        rc_args = ["lint", "--model", "ziff", "--tiling", "5:1,2", "--shape", "7x7"]
        from repro.__main__ import main

        rc = main(rc_args)
        out = capsys.readouterr().out
        assert rc == 1
        assert "SR002" in out and "share chunk" in out

    def test_lint_command_residue_breakage(self, capsys):
        from repro.__main__ import main

        rc = main(["lint", "--model", "ziff", "--tiling", "2:1,1"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SR001" in out

    def test_lint_json_output(self, capsys):
        import json

        from repro.__main__ import main

        rc = main(["lint", "--model", "ziff", "--json", "--no-rng-audit"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"] is True

    def test_lint_codes_table(self, capsys):
        from repro.__main__ import main

        rc = main(["lint", "--codes"])
        out = capsys.readouterr().out
        assert rc == 0
        for code in CODES:
            assert code in out

    def test_lint_all_models_default(self, capsys):
        from repro.__main__ import main

        rc = main(["lint", "--no-rng-audit"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pt100" in out and "ziff" in out
