"""Tests for the scaling analysis module."""

import numpy as np
import pytest

from repro.parallel.machine import DEFAULT_2003, MachineSpec
from repro.parallel.scaling import (
    efficiency,
    isoefficiency_sites,
    strong_scaling,
    weak_scaling,
)


class TestEfficiency:
    def test_p1_is_one(self):
        assert efficiency(DEFAULT_2003, 500 * 500, 1) == pytest.approx(1.0)

    def test_in_unit_interval(self):
        for p in (2, 5, 10):
            e = efficiency(DEFAULT_2003, 400 * 400, p)
            assert 0.0 < e <= 1.0

    def test_decreasing_in_p(self):
        es = [efficiency(DEFAULT_2003, 300 * 300, p) for p in (2, 4, 8)]
        assert es[0] > es[1] > es[2]

    def test_increasing_in_n(self):
        es = [efficiency(DEFAULT_2003, n * n, 8) for n in (100, 400, 1000)]
        assert es[0] < es[1] < es[2]


class TestStrongScaling:
    def test_rows(self):
        rows = strong_scaling(DEFAULT_2003, 500 * 500, [2, 4, 8])
        assert [p for p, _, _ in rows] == [2, 4, 8]
        for p, s, e in rows:
            assert e == pytest.approx(s / p)

    def test_saturation(self):
        rows = strong_scaling(DEFAULT_2003, 200 * 200, [2, 4, 8, 16, 32])
        speedups = [s for _, s, _ in rows]
        gains = np.diff(speedups)
        assert gains[-1] < gains[0]  # diminishing returns


class TestWeakScaling:
    def test_efficiency_stays_high(self):
        rows = weak_scaling(DEFAULT_2003, sites_per_processor=100_000, ps=[2, 4, 8])
        for _, _, e in rows:
            assert e > 0.5

    def test_n_grows_linearly(self):
        rows = weak_scaling(DEFAULT_2003, 1000, [2, 4])
        assert rows[0][1] == 2000 and rows[1][1] == 4000

    def test_too_small_per_processor(self):
        with pytest.raises(ValueError):
            weak_scaling(DEFAULT_2003, 1, [2])


class TestIsoefficiency:
    def test_monotone_in_p(self):
        rows = isoefficiency_sites(DEFAULT_2003, 0.6, [2, 4, 8])
        sizes = [n for _, n in rows]
        assert all(n is not None for n in sizes)
        assert sizes[0] < sizes[1] < sizes[2]

    def test_found_sizes_actually_reach_target(self):
        for p, n in isoefficiency_sites(DEFAULT_2003, 0.6, [2, 6]):
            assert efficiency(DEFAULT_2003, n, p) >= 0.6
            assert efficiency(DEFAULT_2003, n - 1, p) < 0.6

    def test_unreachable_target_is_none(self):
        # a spec with enormous per-update cost caps the efficiency low
        spec = MachineSpec(t_trial=1e-6, t_latency=1e-4, t_update=1e-4, acceptance=0.5)
        rows = isoefficiency_sites(spec, 0.9, [8])
        assert rows[0][1] is None

    def test_target_validation(self):
        with pytest.raises(ValueError):
            isoefficiency_sites(DEFAULT_2003, 1.5, [2])
