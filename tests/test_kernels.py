"""Unit tests for repro.core.kernels — the execution hot paths."""

import numpy as np
import pytest

from repro.core import Configuration, Lattice
from repro.core.kernels import (
    _occurrence_index,
    execute_type_everywhere,
    run_trials_batch,
    run_trials_batch_with_duplicates,
    run_trials_sequential,
    seq_tables,
)
from repro.partition import five_chunk_partition
from repro.core.rng import draw_types


@pytest.fixture
def comp(ziff, small_lattice):
    return ziff.compile(small_lattice)


def empty_state(ziff, small_lattice):
    return Configuration.empty(small_lattice, ziff.species).array


class TestSequential:
    def test_executes_enabled(self, comp, ziff, small_lattice):
        state = empty_state(ziff, small_lattice)
        t = ziff.type_index("CO_ads")
        n = run_trials_sequential(state, comp, [0, 1, 2], [t, t, t])
        assert n == 3
        assert state[:3].tolist() == [1, 1, 1]

    def test_skips_disabled(self, comp, ziff, small_lattice):
        state = empty_state(ziff, small_lattice)
        t = ziff.type_index("CO+O(0)")  # needs CO/O, lattice is empty
        n = run_trials_sequential(state, comp, [0, 1], [t, t])
        assert n == 0
        assert not state.any()

    def test_sequential_dependencies_respected(self, comp, ziff, small_lattice):
        # second trial targets the site the first just filled
        state = empty_state(ziff, small_lattice)
        t = ziff.type_index("CO_ads")
        n = run_trials_sequential(state, comp, [0, 0], [t, t])
        assert n == 1  # second attempt sees CO and is disabled

    def test_counts_accumulated(self, comp, ziff, small_lattice):
        state = empty_state(ziff, small_lattice)
        counts = np.zeros(comp.n_types, dtype=np.int64)
        t = ziff.type_index("CO_ads")
        run_trials_sequential(state, comp, [0, 1], [t, t], counts=counts)
        assert counts[t] == 2
        assert counts.sum() == 2

    def test_record_collects_executed_only(self, comp, ziff, small_lattice):
        state = empty_state(ziff, small_lattice)
        t_ads = ziff.type_index("CO_ads")
        t_rx = ziff.type_index("CO+O(0)")
        record = []
        run_trials_sequential(
            state, comp, [0, 1, 2], [t_ads, t_rx, t_ads], record=record
        )
        assert [(i, t) for i, t, _ in record] == [(0, t_ads), (2, t_ads)]

    def test_length_mismatch(self, comp, ziff, small_lattice):
        state = empty_state(ziff, small_lattice)
        with pytest.raises(ValueError):
            run_trials_sequential(state, comp, [0, 1], [0])

    def test_seq_tables_cached(self, comp):
        assert seq_tables(comp) is seq_tables(comp)


class TestBatch:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_sequential_on_fuzzed_conflict_free_sites(
        self, comp, ziff, small_lattice, seed
    ):
        """Property: on any contract-valid (conflict-free) fuzzed case
        the vectorised batch equals the sequential oracle exactly.

        The cases come from the contract-driven generator
        (:func:`repro.backends.fuzz.fuzz_case`): random states, random
        greedy conflict-free anchor sets, random type streams — not a
        hand-picked partition chunk.
        """
        from repro.backends.fuzz import fuzz_case

        rng = np.random.default_rng(seed)
        kwargs = fuzz_case(comp, "run_trials_batch", rng)
        a = kwargs["state"].copy()
        b = kwargs["state"].copy()
        n_a = run_trials_sequential(a, comp, kwargs["sites"], kwargs["types"])
        n_b = run_trials_batch(b, comp, kwargs["sites"], kwargs["types"])
        assert n_a == n_b
        assert np.array_equal(a, b)

    def test_matches_sequential_on_degenerate_lattice(self, ziff):
        """The same property on a lattice no library tiling covers."""
        from repro.backends.fuzz import fuzz_case
        from repro.core import Lattice

        comp28 = ziff.compile(Lattice((2, 8)))
        for seed in range(3):
            kwargs = fuzz_case(comp28, "run_trials_batch", np.random.default_rng(seed))
            a = kwargs["state"].copy()
            b = kwargs["state"].copy()
            n_a = run_trials_sequential(a, comp28, kwargs["sites"], kwargs["types"])
            n_b = run_trials_batch(b, comp28, kwargs["sites"], kwargs["types"])
            assert n_a == n_b
            assert np.array_equal(a, b)

    def test_empty_batch(self, comp, ziff, small_lattice):
        state = empty_state(ziff, small_lattice)
        n = run_trials_batch(
            state, comp, np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        )
        assert n == 0

    def test_counts(self, comp, ziff, small_lattice):
        state = empty_state(ziff, small_lattice)
        counts = np.zeros(comp.n_types, dtype=np.int64)
        t = ziff.type_index("CO_ads")
        sites = np.array([0, 5, 11], dtype=np.intp)
        run_trials_batch(state, comp, sites, np.full(3, t), counts=counts)
        assert counts[t] == 3

    def test_length_mismatch(self, comp, ziff, small_lattice):
        state = empty_state(ziff, small_lattice)
        with pytest.raises(ValueError):
            run_trials_batch(state, comp, np.array([0, 1]), np.array([0]))


class TestBatchWithDuplicates:
    def test_occurrence_index(self):
        occ = _occurrence_index(np.array([7, 3, 7, 7, 3]))
        assert occ.tolist() == [0, 0, 1, 2, 1]

    def test_occurrence_index_all_unique(self):
        assert _occurrence_index(np.array([4, 2, 9])).tolist() == [0, 0, 0]

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_sequential_on_fuzzed_repeat_streams(
        self, comp, ziff, small_lattice, seed
    ):
        """Property: with-replacement streams over a fuzzed
        conflict-free pool execute exactly like the sequential oracle
        (the occurrence-round decomposition is semantics-preserving)."""
        from repro.backends.fuzz import fuzz_case

        rng = np.random.default_rng(seed)
        kwargs = fuzz_case(comp, "run_trials_batch_with_duplicates", rng)
        a = kwargs["state"].copy()
        b = kwargs["state"].copy()
        n_a = run_trials_sequential(a, comp, kwargs["sites"], kwargs["types"])
        n_b = run_trials_batch_with_duplicates(
            b, comp, kwargs["sites"], kwargs["types"]
        )
        assert n_a == n_b
        assert np.array_equal(a, b)

    def test_empty(self, comp, ziff, small_lattice):
        state = empty_state(ziff, small_lattice)
        n = run_trials_batch_with_duplicates(
            state, comp, np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        )
        assert n == 0


class TestExecuteTypeEverywhere:
    def test_single_site_type(self, comp, ziff, small_lattice):
        state = empty_state(ziff, small_lattice)
        t = ziff.type_index("CO_ads")
        n = execute_type_everywhere(state, comp, t, np.arange(small_lattice.n_sites))
        assert n == small_lattice.n_sites
        assert (state == 1).all()

    def test_pair_type_on_checkerboard(self, comp, ziff, small_lattice):
        from repro.partition import checkerboard

        state = empty_state(ziff, small_lattice)
        cb = checkerboard(small_lattice)
        t = ziff.type_index("O2_ads(0)")
        n = execute_type_everywhere(state, comp, t, cb.chunks[0])
        assert n == cb.chunks[0].size
        assert (state == 2).all()  # every site O: anchors + their partners


class TestDerivedTableCaches:
    """Derived tables must be keyed to the lattice/type binding.

    The caches live on the compiled-model instance; a stale attribute
    (copied instance, rebound lattice, unpickled object from another
    shape) must be detected via the key and rebuilt, never served.
    """

    def test_seq_tables_rebuilt_on_stale_cache(self, ziff):
        comp_a = ziff.compile(Lattice((6, 6)))
        comp_b = ziff.compile(Lattice((10, 10)))
        tables_a = seq_tables(comp_a)
        # simulate a stale cache: the 6x6 tables attached to the 10x10 model
        comp_b._seq_tables = comp_a._seq_tables
        tables_b = seq_tables(comp_b)
        assert tables_b is not tables_a
        # neighbour maps must address the 10x10 lattice (100 sites)
        assert len(tables_b[0][0][0]) == 100
        assert len(tables_a[0][0][0]) == 36

    def test_ensemble_tables_rebuilt_on_stale_cache(self, ziff):
        from repro.core.kernels import ensemble_tables

        comp_a = ziff.compile(Lattice((6, 6)))
        comp_b = ziff.compile(Lattice((10, 10)))
        tmap_a, _, _ = ensemble_tables(comp_a)
        comp_b._ensemble_tables = comp_a._ensemble_tables
        tmap_b, csrc_b, ctgt_b = ensemble_tables(comp_b)
        n_types = len(comp_b.types)
        assert tmap_b.shape[1] == n_types * 100
        assert tmap_a.shape[1] == n_types * 36
        # flat layout: entry (c, t*n + s) equals the per-type map value
        for t, ct in enumerate(comp_b.types):
            for c in range(tmap_b.shape[0]):
                cc = c if c < len(ct.maps) else 0
                assert np.array_equal(
                    tmap_b[c, t * 100 : (t + 1) * 100], ct.maps[cc]
                )
                assert csrc_b[c, t] == ct.srcs[cc]
                assert ctgt_b[c, t] == ct.tgts[cc]

    def test_conflict_lut_rebuilt_on_stale_cache(self, ziff):
        from repro.core.kernels import conflict_lut

        comp_a = ziff.compile(Lattice((6, 6)))
        comp_b = ziff.compile(Lattice((10, 10)))
        lut_a = conflict_lut(comp_a)
        comp_b._conflict_lut = comp_a._conflict_lut
        lut_b = conflict_lut(comp_b)
        assert lut_b.shape == (2 * 100 - 1,)
        assert lut_a.shape == (2 * 36 - 1,)
        # a site always conflicts with itself (zero difference)
        assert lut_b[100 - 1]

    def test_caches_hit_when_key_matches(self, ziff):
        from repro.core.kernels import conflict_lut, ensemble_tables

        comp = ziff.compile(Lattice((6, 6)))
        assert seq_tables(comp) is seq_tables(comp)
        assert ensemble_tables(comp)[0] is ensemble_tables(comp)[0]
        assert conflict_lut(comp) is conflict_lut(comp)

    def test_same_model_two_lattices_interleaved_use(self, ziff, rng):
        """Alternating kernel calls across two lattice sizes stay correct."""
        from repro.core.kernels import run_trials_stacked

        for side in (6, 10, 6, 10):
            lat = Lattice((side, side))
            comp = ziff.compile(lat)
            state = Configuration.empty(lat, ziff.species).array
            stacked = np.ascontiguousarray(state[None, :].copy())
            ref = state.copy()
            p5 = five_chunk_partition(lat)
            chunk = p5.chunks[0]
            types = draw_types(rng, comp.type_cum, chunk.size)
            run_trials_stacked(
                stacked, comp, np.zeros(chunk.size, dtype=np.intp),
                chunk, types,
            )
            run_trials_sequential(ref, comp, chunk, types)
            assert np.array_equal(stacked[0], ref)
