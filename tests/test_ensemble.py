"""Differential tests: the stacked ensemble engine vs sequential runs.

The ensemble contract is *bit-identity*: replica ``r`` of an ensemble
run must reproduce, to the last bit, the trajectory of the sequential
simulator with the same seed — final state, simulation time, trial
counts, per-type executed counts and every sampled coverage value.
These tests assert that for each supported algorithm family
(RSM / NDCA / PNDCA) in each relevant configuration; any divergence
between the vectorised cross-replica kernels and the sequential
semantics shows up as a hard equality failure here.
"""

import numpy as np
import pytest

from repro.ca.ndca import NDCA
from repro.ca.pndca import PNDCA
from repro.core.lattice import Lattice
from repro.dmc.base import CoverageObserver
from repro.dmc.rsm import RSM
from repro.ensemble import (
    ENSEMBLE_STRATEGIES,
    EnsembleNDCA,
    EnsemblePNDCA,
    EnsembleRSM,
    run_replicated,
)
from repro.models.zgb import zgb_model
from repro.partition.tilings import five_chunk_family, five_chunk_partition

SIDE = 10
SEEDS = [11, 12, 13, 14]
UNTIL = 2.0
INTERVAL = 0.5

MODEL = zgb_model(0.5)
LATTICE = Lattice((SIDE, SIDE))
P5 = five_chunk_partition(LATTICE)
P5.validate_conflict_free(MODEL)


def assert_replicas_match(ens_result, seq_results):
    """Every replica view equals its sequential counterpart exactly."""
    assert ens_result.n_replicas == len(seq_results)
    for i, seq in enumerate(seq_results):
        rep = ens_result.replica_result(i)
        assert np.array_equal(
            ens_result.states[i], seq.final_state.array.reshape(-1)
        ), f"replica {i}: final state differs"
        assert rep.final_time == seq.final_time, f"replica {i}: time differs"
        assert rep.n_trials == seq.n_trials, f"replica {i}: trial count differs"
        assert np.array_equal(
            rep.executed_per_type, seq.executed_per_type
        ), f"replica {i}: executed-per-type differs"
        n = len(rep.times)
        assert n > 0, "expected sampled coverages"
        assert np.array_equal(rep.times, seq.times[:n])
        for sp in rep.coverage:
            assert np.array_equal(
                rep.coverage[sp], seq.coverage[sp][:n]
            ), f"replica {i}: coverage[{sp}] differs"


# ----------------------------------------------------------------------
# RSM
# ----------------------------------------------------------------------

@pytest.mark.parametrize("time_mode", ["stochastic", "deterministic"])
def test_rsm_bit_identical(time_mode):
    def factory(seed):
        return RSM(
            MODEL, LATTICE, seed=seed, time_mode=time_mode, block=512,
            observers=[CoverageObserver(INTERVAL)],
        )

    seq = run_replicated(factory, SEEDS, UNTIL)
    ens = EnsembleRSM(
        MODEL, LATTICE, seeds=SEEDS, time_mode=time_mode,
        sample_interval=INTERVAL, block=512,
    )
    assert_replicas_match(ens.run(until=UNTIL), seq)


def test_rsm_multi_block_bit_identical():
    """A block far smaller than the trial budget exercises the block loop."""
    def factory(seed):
        return RSM(
            MODEL, LATTICE, seed=seed, block=64,
            observers=[CoverageObserver(INTERVAL)],
        )

    seq = run_replicated(factory, SEEDS, UNTIL)
    ens = EnsembleRSM(
        MODEL, LATTICE, seeds=SEEDS, sample_interval=INTERVAL, block=64
    )
    assert_replicas_match(ens.run(until=UNTIL), seq)


@pytest.mark.parametrize("window", [2, 7, 33])
def test_rsm_window_invariant(window):
    """The interleave window is a performance knob, never a semantic one."""
    def factory(seed):
        return RSM(
            MODEL, LATTICE, seed=seed, block=256,
            observers=[CoverageObserver(INTERVAL)],
        )

    seq = run_replicated(factory, SEEDS, UNTIL)
    ens = EnsembleRSM(
        MODEL, LATTICE, seeds=SEEDS, sample_interval=INTERVAL,
        block=256, window=window,
    )
    assert_replicas_match(ens.run(until=UNTIL), seq)


# ----------------------------------------------------------------------
# NDCA
# ----------------------------------------------------------------------

@pytest.mark.parametrize("order", ["random", "raster"])
def test_ndca_bit_identical(order):
    def factory(seed):
        return NDCA(
            MODEL, LATTICE, seed=seed, order=order,
            observers=[CoverageObserver(INTERVAL)],
        )

    seq = run_replicated(factory, SEEDS, UNTIL)
    ens = EnsembleNDCA(
        MODEL, LATTICE, seeds=SEEDS, order=order, sample_interval=INTERVAL
    )
    assert_replicas_match(ens.run(until=UNTIL), seq)


def test_ndca_deterministic_time_bit_identical():
    def factory(seed):
        return NDCA(
            MODEL, LATTICE, seed=seed, order="random",
            time_mode="deterministic", observers=[CoverageObserver(INTERVAL)],
        )

    seq = run_replicated(factory, SEEDS, UNTIL)
    ens = EnsembleNDCA(
        MODEL, LATTICE, seeds=SEEDS, order="random",
        time_mode="deterministic", sample_interval=INTERVAL,
    )
    assert_replicas_match(ens.run(until=UNTIL), seq)


# ----------------------------------------------------------------------
# PNDCA
# ----------------------------------------------------------------------

def test_pndca_ordered_bit_identical():
    def factory(seed):
        return PNDCA(
            MODEL, LATTICE, seed=seed, partition=P5, strategy="ordered",
            observers=[CoverageObserver(INTERVAL)],
        )

    seq = run_replicated(factory, SEEDS, UNTIL)
    ens = EnsemblePNDCA(
        MODEL, LATTICE, seeds=SEEDS, partition=P5, sample_interval=INTERVAL
    )
    assert_replicas_match(ens.run(until=UNTIL), seq)


def test_pndca_partition_cycle_bit_identical():
    """Several partitions on a cycle schedule: deterministic, comparable."""
    family = five_chunk_family(LATTICE)
    for p in family:
        p.validate_conflict_free(MODEL)

    def factory(seed):
        return PNDCA(
            MODEL, LATTICE, seed=seed, partition=family, strategy="ordered",
            partition_schedule="cycle", observers=[CoverageObserver(INTERVAL)],
        )

    seq = run_replicated(factory, SEEDS, UNTIL)
    ens = EnsemblePNDCA(
        MODEL, LATTICE, seeds=SEEDS, partition=family,
        partition_schedule="cycle", sample_interval=INTERVAL,
    )
    assert_replicas_match(ens.run(until=UNTIL), seq)


@pytest.mark.parametrize("strategy", ENSEMBLE_STRATEGIES)
def test_pndca_strategies_replica_isolated(strategy):
    """Randomised schedules share one generator: replica r of an
    ensemble of R must equal replica 0 of an ensemble of one (the
    schedule stream is independent of the replica streams)."""
    big = EnsemblePNDCA(
        MODEL, LATTICE, seeds=SEEDS, partition=P5, strategy=strategy,
        schedule_seed=99, sample_interval=INTERVAL,
    ).run(until=UNTIL)
    for i, s in enumerate(SEEDS):
        solo = EnsemblePNDCA(
            MODEL, LATTICE, seeds=[s], partition=P5, strategy=strategy,
            schedule_seed=99, sample_interval=INTERVAL,
        ).run(until=UNTIL)
        assert np.array_equal(big.states[i], solo.states[0])
        assert big.final_times[i] == solo.final_times[0]
        assert np.array_equal(
            big.executed_per_type[i], solo.executed_per_type[0]
        )


# ----------------------------------------------------------------------
# statistics plumbing and error handling
# ----------------------------------------------------------------------

def test_statistics_reduction_matches_manual():
    ens = EnsemblePNDCA(
        MODEL, LATTICE, seeds=SEEDS, partition=P5, sample_interval=INTERVAL
    )
    res = ens.run(until=UNTIL)
    stats = res.statistics()
    assert stats.n_runs == len(SEEDS)
    for sp, series in res.coverage.items():
        assert np.allclose(stats.mean[sp], series.mean(axis=0))
        assert np.allclose(
            stats.stderr(sp),
            series.std(axis=0, ddof=1) / np.sqrt(len(SEEDS)),
        )
    cov = res.mean_final_coverages()
    sem = res.stderr_final_coverages()
    assert set(cov) == set(MODEL.species.names)
    assert abs(sum(cov.values()) - 1.0) < 1e-12
    assert all(v >= 0 for v in sem.values())


def test_spawned_streams_mode():
    """n_replicas/seed mode runs and produces R distinct trajectories."""
    ens = EnsembleRSM(MODEL, LATTICE, n_replicas=3, seed=5)
    res = ens.run(until=1.0)
    assert res.n_replicas == 3
    assert not np.array_equal(res.states[0], res.states[1])


def test_constructor_errors():
    with pytest.raises(ValueError, match="time mode"):
        EnsembleRSM(MODEL, LATTICE, seeds=[1], time_mode="warp")
    with pytest.raises(ValueError, match="seeds"):
        EnsembleRSM(MODEL, LATTICE)
    with pytest.raises(ValueError, match="disagrees"):
        EnsembleRSM(MODEL, LATTICE, seeds=[1, 2], n_replicas=3)
    with pytest.raises(ValueError, match="strategy"):
        EnsemblePNDCA(MODEL, LATTICE, seeds=[1], partition=P5, strategy="weighted")
    with pytest.raises(ValueError, match="sampling interval"):
        EnsembleRSM(MODEL, LATTICE, seeds=[1], sample_interval=0.0)
    ens = EnsembleRSM(MODEL, LATTICE, seeds=[1])
    with pytest.raises(ValueError, match="not beyond"):
        ens.run(until=0.0)


def test_pndca_rejects_conflicting_partition():
    """No sequential fallback: a one-chunk partition must be refused."""
    from repro.partition.partition import Partition

    whole = Partition(LATTICE, [np.arange(LATTICE.n_sites)])
    with pytest.raises(Exception):
        EnsemblePNDCA(MODEL, LATTICE, seeds=[1], partition=whole)


# ----------------------------------------------------------------------
# statistical regression (slow): guards against silent stream coupling
# ----------------------------------------------------------------------

# Reference statistics from *sequential* seed-code runs: 10 independent
# PNDCA trajectories (seeds 1000..1009, 20x20 ZGB, five-chunk
# partition, until=30) per y point; regenerate with
# scripts in the docstring below if the sequential RNG contract ever
# changes intentionally.
SEQUENTIAL_REFERENCE = {
    # y: (co_mean, co_sem, o_mean, o_sem)
    0.35: (0.000250, 0.000250, 0.883750, 0.010899),
    0.45: (0.006500, 0.001302, 0.706500, 0.013034),
    0.53: (0.139750, 0.016472, 0.330250, 0.012950),
}


@pytest.mark.slow
@pytest.mark.parametrize("y", sorted(SEQUENTIAL_REFERENCE))
def test_ensemble_statistics_match_sequential_reference(y):
    """Ensemble ZGB means agree with stored sequential-run statistics.

    The ensemble uses *different* (spawned) streams than the stored
    reference runs, so agreement here is statistical: the two mean
    estimates must lie within 3 combined standard errors.  If the
    replica streams were silently coupled (e.g. one generator feeding
    two replicas, or a schedule draw consuming replica randomness) the
    effective sample size collapses and these bounds break.
    """
    from repro.models.zgb import empty_surface

    side, until, r = 20, 30.0, 10
    model = zgb_model(y)
    lattice = Lattice((side, side))
    p5 = five_chunk_partition(lattice)
    p5.validate_conflict_free(model)
    ens = EnsemblePNDCA(
        model, lattice, n_replicas=r, seed=77,
        initial=empty_surface(lattice, model), partition=p5,
    )
    res = ens.run(until=until)
    cov = res.mean_final_coverages()
    sem = res.stderr_final_coverages()
    co_ref, co_sem_ref, o_ref, o_sem_ref = SEQUENTIAL_REFERENCE[y]
    co_tol = 3.0 * np.hypot(co_sem_ref, sem["CO"]) + 1e-12
    o_tol = 3.0 * np.hypot(o_sem_ref, sem["O"]) + 1e-12
    assert abs(cov["CO"] - co_ref) <= co_tol, (
        f"y={y}: ensemble CO {cov['CO']:.4f} vs sequential {co_ref:.4f} "
        f"(tol {co_tol:.4f})"
    )
    assert abs(cov["O"] - o_ref) <= o_tol, (
        f"y={y}: ensemble O {cov['O']:.4f} vs sequential {o_ref:.4f} "
        f"(tol {o_tol:.4f})"
    )
