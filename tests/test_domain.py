"""Tests for the Segers-style domain decomposition."""

import math

import numpy as np
import pytest

from repro.core import Lattice
from repro.dmc import RSM
from repro.parallel.domain import DomainDecomposedRSM
from repro.parallel.machine import DEFAULT_2003


class TestDecomposition:
    def test_strips_partition_lattice(self, ziff):
        sim = DomainDecomposedRSM(ziff, Lattice((12, 10)), n_strips=4, seed=0)
        all_sites = np.sort(np.concatenate(sim.strips))
        assert np.array_equal(all_sites, np.arange(120))

    def test_boundary_anchors_marked(self, ziff):
        sim = DomainDecomposedRSM(ziff, Lattice((12, 10)), n_strips=4, seed=0)
        # pair patterns reach 1 row: the first/last row of each 3-row
        # strip is boundary -> 2 of 3 rows
        assert sim._boundary_anchor.sum() == 4 * 2 * 10

    def test_volume_boundary_ratio(self, ziff):
        sim = DomainDecomposedRSM(ziff, Lattice((12, 10)), n_strips=4, seed=0)
        assert sim.volume_boundary_ratio() == pytest.approx((120 - 80) / 80)

    def test_single_strip_has_no_boundary(self, ziff):
        sim = DomainDecomposedRSM(ziff, Lattice((12, 10)), n_strips=1, seed=0)
        assert sim._boundary_anchor.sum() == 0
        assert math.isinf(sim.volume_boundary_ratio())

    def test_strip_count_validation(self, ziff):
        with pytest.raises(ValueError):
            DomainDecomposedRSM(ziff, Lattice((4, 4)), n_strips=9)

    def test_2d_required(self, adsorption_1d):
        with pytest.raises(ValueError, match="2-d"):
            DomainDecomposedRSM(adsorption_1d, Lattice((12,)), n_strips=2)


class TestRun:
    def test_events_classified(self, ziff):
        sim = DomainDecomposedRSM(
            ziff, Lattice((12, 12)), n_strips=3, window=100, seed=0
        )
        res = sim.run(until=2.0)
        assert sim.boundary_events + sim.interior_events == res.n_executed
        assert sim.boundary_events > 0

    def test_kinetics_close_to_rsm(self, ziff):
        lat = Lattice((12, 12))
        dd = np.mean(
            [
                DomainDecomposedRSM(ziff, lat, n_strips=3, window=48, seed=s)
                .run(until=4.0)
                .final_state.coverage("O")
                for s in range(5)
            ]
        )
        rsm = np.mean(
            [
                RSM(ziff, lat, seed=s + 50).run(until=4.0).final_state.coverage("O")
                for s in range(5)
            ]
        )
        assert dd == pytest.approx(rsm, abs=0.12)

    def test_modelled_parallel_time(self, ziff):
        sim = DomainDecomposedRSM(
            ziff, Lattice((12, 12)), n_strips=3, window=100, seed=0
        )
        sim.run(until=2.0)
        t = sim.modelled_parallel_time(DEFAULT_2003)
        assert t > 0
        # compute-only part is exchanges * window * t_trial
        assert t > sim.exchanges * sim.window * DEFAULT_2003.t_trial

    def test_single_strip_no_comm_cost(self, ziff):
        sim = DomainDecomposedRSM(
            ziff, Lattice((12, 12)), n_strips=1, window=100, seed=0
        )
        sim.run(until=1.0)
        t = sim.modelled_parallel_time(DEFAULT_2003)
        assert t == pytest.approx(
            sim.exchanges * sim.window * DEFAULT_2003.t_trial
        )
