"""Tests for the observability layer (repro.obs).

Covers the collector/tracer primitives, the bit-identity contract
(instrumentation must never perturb a trajectory), counter ground
truth against engine results, agreement with the static SR030 RNG
audit, atomic emission, and the bench CLI.
"""

import json
import time

import numpy as np
import pytest

from repro.ca import NDCA, PNDCA
from repro.core import Lattice
from repro.dmc import RSM
from repro.dmc.base import CoverageObserver
from repro.ensemble import EnsemblePNDCA, EnsembleRSM
from repro.models import ziff_model
from repro.obs import (
    BENCH_SCHEMA,
    NULL_METRICS,
    NULL_TRACER,
    BenchSchemaError,
    CountingGenerator,
    MetricsCollector,
    Tracer,
    bench_record,
    current_metrics,
    format_metrics,
    load_bench_json,
    use_metrics,
    validate_bench_record,
    write_bench_json,
    write_text_atomic,
)
from repro.partition import five_chunk_partition


# ----------------------------------------------------------------------
# collector primitives
# ----------------------------------------------------------------------
class TestMetricsCollector:
    def test_counters_gauges_histograms(self):
        m = MetricsCollector()
        m.inc("a")
        m.inc("a", 2)
        m.set_gauge("g", 0.5)
        for v in (1.0, 2.0, 3.0):
            m.observe("h", v)
        snap = m.snapshot()
        assert snap.counter("a") == 3
        assert snap.counter("missing") == 0.0
        assert snap.gauge("g") == 0.5
        h = snap.histograms["h"]
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1.0 and h.max == 3.0
        assert h.std == pytest.approx(np.std([1, 2, 3]))

    def test_phase_records_wall_and_cpu(self):
        m = MetricsCollector()
        with m.phase("p"):
            time.sleep(0.01)
        with m.phase("p"):
            pass
        p = m.snapshot().phases["p"]
        assert p.calls == 2
        assert p.wall_s >= 0.01
        assert p.cpu_s >= 0.0

    def test_snapshot_is_immutable_and_detached(self):
        m = MetricsCollector()
        m.inc("a")
        snap = m.snapshot()
        m.inc("a")  # later mutation must not leak into the snapshot
        assert snap.counter("a") == 1
        with pytest.raises(TypeError):
            snap.counters["a"] = 99  # MappingProxyType

    def test_to_dict_round_trips_through_json(self):
        m = MetricsCollector()
        m.inc("c", 2)
        m.set_gauge("g", 1.5)
        m.observe("h", 4.0)
        with m.phase("run"):
            pass
        d = json.loads(json.dumps(m.snapshot().to_dict()))
        assert d["counters"]["c"] == 2
        assert d["histograms"]["h"]["count"] == 1
        assert d["phases"]["run"]["calls"] == 1

    def test_null_collector_stores_nothing(self):
        NULL_METRICS.inc("a")
        NULL_METRICS.set_gauge("g", 1.0)
        NULL_METRICS.observe("h", 1.0)
        with NULL_METRICS.phase("p"):
            pass
        assert not NULL_METRICS.enabled
        snap = NULL_METRICS.snapshot()
        assert not snap.counters and not snap.phases

    def test_ambient_collector_stack(self):
        assert current_metrics() is NULL_METRICS
        m = MetricsCollector()
        with use_metrics(m) as got:
            assert got is m
            assert current_metrics() is m
            inner = MetricsCollector()
            with use_metrics(inner):
                assert current_metrics() is inner
            assert current_metrics() is m
        assert current_metrics() is NULL_METRICS

    def test_format_metrics_renders_all_blocks(self):
        m = MetricsCollector()
        m.inc("trials.attempted", 10)
        m.set_gauge("acceptance", 0.5)
        m.observe("chunk.size", 20.0)
        with m.phase("run"):
            pass
        text = format_metrics(m.snapshot())
        for needle in ("trials.attempted", "acceptance", "chunk.size", "run"):
            assert needle in text


# ----------------------------------------------------------------------
# counting generator: transparency + accounting
# ----------------------------------------------------------------------
class TestCountingGenerator:
    def test_stream_identical_to_wrapped_generator(self):
        raw = np.random.default_rng(42)
        counted = CountingGenerator(np.random.default_rng(42), MetricsCollector())
        assert np.array_equal(raw.random(100), counted.random(100))
        assert np.array_equal(
            raw.integers(0, 50, size=33), counted.integers(0, 50, size=33)
        )
        assert np.array_equal(raw.permutation(17), counted.permutation(17))
        assert np.array_equal(
            raw.exponential(scale=2.0, size=5), counted.exponential(scale=2.0, size=5)
        )
        assert raw.gamma(3.0) == counted.gamma(3.0)

    def test_draw_counts(self):
        m = MetricsCollector()
        g = CountingGenerator(np.random.default_rng(0), m)
        g.random(100)
        g.random()  # scalar draw counts as 1
        g.integers(0, 10, size=(4, 5))
        snap = m.snapshot()
        assert snap.counter("rng.random.calls") == 2
        assert snap.counter("rng.random.draws") == 101
        assert snap.counter("rng.integers.calls") == 1
        assert snap.counter("rng.integers.draws") == 20

    def test_non_draw_attributes_pass_through(self):
        g = CountingGenerator(np.random.default_rng(0), MetricsCollector())
        assert g.bit_generator is g.generator.bit_generator


# ----------------------------------------------------------------------
# engine counters vs. ground truth
# ----------------------------------------------------------------------
@pytest.fixture
def ten(ziff):
    lat = Lattice((10, 10))
    return lat, five_chunk_partition(lat)


class TestEngineCounters:
    def test_rsm_counters_match_result(self, ziff, ten):
        lat, _ = ten
        m = MetricsCollector()
        res = RSM(ziff, lat, seed=3, metrics=m).run(until=5.0)
        snap = m.snapshot()
        assert snap.counter("trials.attempted") == res.n_trials
        assert snap.counter("trials.executed") == res.n_executed
        assert snap.gauge("acceptance") == pytest.approx(res.acceptance)
        assert res.metrics is not None
        assert res.metrics.counter("trials.executed") == res.n_executed

    def test_pndca_counters_and_chunk_stats(self, ziff, ten):
        lat, p5 = ten
        m = MetricsCollector()
        res = PNDCA(ziff, lat, seed=3, partition=p5, metrics=m).run(until=5.0)
        snap = m.snapshot()
        assert snap.counter("trials.attempted") == res.n_trials
        assert snap.counter("trials.executed") == res.n_executed
        chunks = snap.histograms["pndca.chunk.size"]
        # every chunk visit covers exactly the partition's chunk sizes
        assert chunks.count == snap.counter("pndca.chunk.visits")
        assert chunks.total == res.n_trials
        occ = snap.histograms["pndca.chunk.occupancy"]
        assert 0.0 < occ.min and occ.max <= 1.0
        util = snap.histograms["pndca.chunk.utilisation"]
        assert 0.0 <= util.min and util.max <= 1.0

    def test_per_type_acceptance_gauges(self, ziff, ten):
        lat, _ = ten
        m = MetricsCollector()
        res = RSM(ziff, lat, seed=5, metrics=m).run(until=5.0)
        snap = m.snapshot()
        executed = attempted = 0
        for rt in ziff.reaction_types:
            e = snap.gauge(f"executed.{rt.name}")
            a = snap.gauge(f"attempted.{rt.name}", 0.0)
            acc = snap.gauge(f"acceptance.{rt.name}", 0.0)
            if a:
                assert acc == pytest.approx(e / a)
            executed += e
            attempted += a
        assert executed == res.n_executed
        assert attempted == res.n_trials

    def test_ensemble_counters_match_result(self, ziff, ten):
        lat, p5 = ten
        m = MetricsCollector()
        sim = EnsemblePNDCA(
            ziff, lat, n_replicas=3, seed=9, partition=p5, metrics=m
        )
        res = sim.run(until=4.0)
        snap = m.snapshot()
        assert snap.counter("trials.attempted") == res.total_trials
        assert snap.counter("trials.executed") == int(
            res.executed_per_type.sum()
        )
        assert snap.gauge("ensemble.n_replicas") == 3
        assert res.metrics is not None

    def test_rng_draw_counter_agrees_with_sr030_lint(self, ziff, ten):
        """Runtime draw kinds must be a subset of the static SR030 audit."""
        from repro.lint.rng_lint import collect_draws

        lat, p5 = ten
        m = MetricsCollector()
        PNDCA(ziff, lat, seed=3, partition=p5, metrics=m).run(until=3.0)
        runtime_kinds = {
            name.split(".")[1]
            for name in m.snapshot().counters
            if name.startswith("rng.")
        }
        static_kinds = {e.kind for e in collect_draws(PNDCA)}
        assert runtime_kinds <= static_kinds, (
            f"runtime draws {runtime_kinds - static_kinds} invisible to SR030"
        )

    def test_ambient_collector_captures_simulator(self, ziff, ten):
        """`repro run --metrics` path: collector installed around construction."""
        lat, _ = ten
        m = MetricsCollector()
        with use_metrics(m):
            res = RSM(ziff, lat, seed=1).run(until=2.0)
        assert m.snapshot().counter("trials.attempted") == res.n_trials


# ----------------------------------------------------------------------
# bit-identity: instrumentation must not perturb trajectories
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("engine", ["rsm", "ndca", "pndca"])
    def test_sequential_engines(self, ziff, ten, engine):
        lat, p5 = ten

        def build(**kw):
            if engine == "rsm":
                return RSM(ziff, lat, seed=21, **kw)
            if engine == "ndca":
                return NDCA(ziff, lat, seed=21, order="random", **kw)
            return PNDCA(ziff, lat, seed=21, partition=p5, **kw)

        bare = build().run(until=4.0)
        instrumented = build(metrics=MetricsCollector(), tracer=Tracer()).run(
            until=4.0
        )
        assert np.array_equal(
            bare.final_state.array, instrumented.final_state.array
        )
        assert bare.n_trials == instrumented.n_trials
        assert bare.final_time == instrumented.final_time
        assert np.array_equal(
            bare.executed_per_type, instrumented.executed_per_type
        )

    @pytest.mark.parametrize("cls", [EnsembleRSM, EnsemblePNDCA])
    def test_ensemble_engines(self, ziff, ten, cls):
        lat, p5 = ten
        kw = {"n_replicas": 3, "seed": 8}
        if cls is EnsemblePNDCA:
            kw["partition"] = p5
        bare = cls(ziff, lat, **kw).run(until=3.0)
        inst = cls(
            ziff, lat, metrics=MetricsCollector(), tracer=Tracer(), **kw
        ).run(until=3.0)
        assert np.array_equal(bare.states, inst.states)
        assert np.array_equal(bare.final_times, inst.final_times)
        assert np.array_equal(bare.n_trials, inst.n_trials)


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_spans(self):
        t = Tracer()
        with t.span("outer", color="red"):
            with t.span("inner"):
                pass
        assert [s.name for s in t.spans] == ["inner", "outer"]
        assert dict(t.spans[1].attrs) == {"color": "red"}
        assert all(s.duration >= 0 for s in t.spans)
        recs = t.to_records()
        assert recs[0]["name"] == "inner"
        assert recs[1]["color"] == "red"

    def test_step_and_chunk_hooks_fire(self, ziff, ten):
        lat, p5 = ten
        t = Tracer()
        PNDCA(ziff, lat, seed=1, partition=p5, tracer=t).run(
            until=1.0, max_steps=2
        )
        kinds = {e[0] for e in t.events}
        assert "step" in kinds and "chunk" in kinds
        chunk_events = [e for e in t.events if e[0] == "chunk"]
        # 2 steps x 5 chunks, indices propagated from the schedule
        assert len(chunk_events) == 10
        assert {e[3]["chunk"] for e in chunk_events} == set(range(5))

    def test_snapshot_hook_fires_on_observer_sampling(self, ziff, ten):
        lat, _ = ten
        t = Tracer()
        RSM(
            ziff, lat, seed=1, tracer=t,
            observers=[CoverageObserver(interval=1.0)],
        ).run(until=3.0)
        snapshots = [e for e in t.events if e[0] == "snapshot"]
        assert len(snapshots) >= 3  # grid points 0,1,2 at least

    def test_null_tracer_stores_nothing(self):
        NULL_TRACER.on_step(1, 0.0)
        NULL_TRACER.on_chunk(0, 10, 0.0)
        NULL_TRACER.on_snapshot(0.0)
        with NULL_TRACER.span("x"):
            pass
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.to_records() == []


# ----------------------------------------------------------------------
# emission: atomicity + schema
# ----------------------------------------------------------------------
class TestEmit:
    def test_write_text_atomic(self, tmp_path):
        target = tmp_path / "report.txt"
        write_text_atomic(target, "hello\n")
        assert target.read_text() == "hello\n"
        write_text_atomic(target, "replaced\n")
        assert target.read_text() == "replaced\n"
        # no stray temp files left behind
        assert [p.name for p in tmp_path.iterdir()] == ["report.txt"]

    def test_bench_record_is_schema_valid(self, ziff):
        rec = bench_record(
            name="unit",
            algorithm="RSM",
            model=ziff.name,
            lattice_shape=(10, 10),
            seed=1,
            timings={"wall_s": 0.1, "trials": 100, "trials_per_s": 1000.0},
        )
        validate_bench_record(rec)
        assert rec["schema"] == BENCH_SCHEMA

    def test_validation_collects_all_problems(self):
        with pytest.raises(BenchSchemaError) as exc:
            validate_bench_record({"schema": BENCH_SCHEMA, "name": "x"})
        msg = str(exc.value)
        assert "timings" in msg and "algorithm" in msg

    def test_wrong_schema_tag_rejected(self):
        with pytest.raises(BenchSchemaError, match="schema"):
            validate_bench_record({"schema": "other/9", "name": "x"})

    def test_write_and_load_round_trip(self, tmp_path, ziff):
        rec = bench_record(
            name="roundtrip",
            algorithm="PNDCA",
            model=ziff.name,
            lattice_shape=(10, 10),
            seed=7,
            timings={"wall_s": 0.5, "trials": 10, "trials_per_s": 20.0},
            metrics={"counters": {"steps": 3}},
        )
        path = write_bench_json(tmp_path, rec)
        assert path.name == "BENCH_roundtrip.json"
        assert load_bench_json(path) == rec

    def test_truncated_json_fails_loudly(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"schema": "repro.bench/1", "name": "bad", "tim')
        with pytest.raises(BenchSchemaError, match="BENCH_bad.json"):
            load_bench_json(path)


# ----------------------------------------------------------------------
# bench CLI (the CI entry point)
# ----------------------------------------------------------------------
class TestBenchCLI:
    def test_json_emits_valid_reports_for_three_engines(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main(
            [
                "bench", "--json", "--out", str(tmp_path),
                "--engines", "rsm,pndca,ensemble-pndca",
                "--side", "10", "--until", "2.0",
            ]
        )
        assert rc == 0
        files = sorted(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 3
        for f in files:
            rec = load_bench_json(f)  # validates
            assert rec["timings"]["trials"] > 0
            assert rec["metrics"]["counters"]["trials.executed"] > 0
        # stdout carries the same records as a JSON array
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("[") :])
        assert len(payload) == 3

    def test_check_passes_on_valid_and_fails_on_invalid(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main(
            ["bench", "--json", "--out", str(tmp_path),
             "--engines", "rsm", "--side", "10", "--until", "1.0"]
        )
        assert rc == 0
        good = str(tmp_path / "BENCH_rsm.json")
        assert main(["bench", "--check", good]) == 0
        bad = tmp_path / "BENCH_broken.json"
        bad.write_text('{"schema": "repro.bench/1"')
        capsys.readouterr()
        assert main(["bench", "--check", good, str(bad)]) == 1
        assert "BENCH_broken.json" in capsys.readouterr().err

    def test_unknown_engine_rejected(self, capsys):
        from repro.__main__ import main

        rc = main(["bench", "--engines", "no-such-engine"])
        assert rc == 2


# ----------------------------------------------------------------------
# overhead of the disabled path
# ----------------------------------------------------------------------
def test_defaults_are_the_null_singletons(ziff, ten):
    """The zero-overhead guarantee rests on the shared null objects."""
    lat, p5 = ten
    sim = PNDCA(ziff, lat, seed=1, partition=p5)
    assert sim.metrics is NULL_METRICS
    assert sim.tracer is NULL_TRACER
    # and the RNG stays unwrapped (no delegation layer on the hot path)
    assert isinstance(sim.rng, np.random.Generator)


@pytest.mark.slow
def test_disabled_instrumentation_overhead_is_negligible():
    """A default (disabled) run must not be slower than an instrumented one.

    The disabled path does strictly less work than the enabled path, so
    ``disabled <= enabled * bound`` catches the failure mode that
    matters: collection cost accidentally wired into the default path.
    The bound is generous (1.2x + 50ms) to stay robust on noisy CI.
    """
    model = ziff_model(k_co=1.0, k_o2=0.5, k_co2=2.0)
    lat = Lattice((20, 20))
    p5 = five_chunk_partition(lat)

    def run_once(**kw):
        t0 = time.perf_counter()
        PNDCA(model, lat, seed=1, partition=p5, **kw).run(until=30.0)
        return time.perf_counter() - t0

    run_once()  # warm-up
    disabled = min(run_once() for _ in range(3))
    enabled = min(
        run_once(metrics=MetricsCollector(), tracer=Tracer()) for _ in range(3)
    )
    assert disabled < enabled * 1.2 + 0.05
