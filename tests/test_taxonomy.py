"""Tests for the algorithm taxonomy / factory."""

import pytest

from repro.core import Lattice
from repro.partition import five_chunk_partition
from repro.taxonomy import REGISTRY, describe_all, list_algorithms, make_simulator


class TestRegistry:
    def test_all_expected_keys(self):
        assert set(REGISTRY) == {
            "rsm", "vssm", "frm", "ndca", "sync-ca", "pndca", "lpndca",
            "typepart", "dd-rsm",
        }

    def test_exact_flags(self):
        exact = {k for k, v in REGISTRY.items() if v.exact}
        assert exact == {"rsm", "vssm", "frm"}

    def test_families(self):
        assert REGISTRY["pndca"].family == "CA"
        assert REGISTRY["rsm"].family == "DMC"

    def test_list_sorted(self):
        assert list_algorithms() == sorted(REGISTRY)


class TestFactory:
    def test_make_simple(self, ziff):
        sim = make_simulator("rsm", ziff, Lattice((8, 8)), seed=0)
        res = sim.run(until=1.0)
        assert res.n_trials > 0

    def test_make_with_kwargs(self, ziff, small_lattice):
        p = five_chunk_partition(small_lattice)
        p.validate_conflict_free(ziff)
        sim = make_simulator(
            "pndca", ziff, small_lattice, seed=0, partition=p, strategy="ordered"
        )
        assert "ordered" in sim.algorithm

    def test_unknown_key(self, ziff):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_simulator("magic", ziff, Lattice((4, 4)))

    def test_every_entry_constructible(self, ziff, small_lattice):
        p = five_chunk_partition(small_lattice)
        p.validate_conflict_free(ziff)
        for key in REGISTRY:
            kwargs: dict = {"seed": 1}
            if key in ("pndca", "lpndca"):
                kwargs["partition"] = p
            sim = make_simulator(key, ziff, small_lattice, **kwargs)
            res = sim.run(until=0.5)
            assert res.final_time > 0, key


class TestDescribe:
    def test_table_mentions_everything(self):
        text = describe_all()
        for key in REGISTRY:
            assert key in text
        assert "exact" in text and "approx" in text
