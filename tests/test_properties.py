"""Property-based tests (hypothesis) on the core invariants.

The paper's correctness rests on a handful of structural invariants:
partitions cover the lattice disjointly, the non-overlap rule implies
commuting reactions (so batched == sequential execution), lattices are
translation invariant, and trial streams never corrupt state encoding.
These are exactly the properties worth fuzzing.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Lattice
from repro.core.kernels import (
    _occurrence_index,
    run_trials_batch,
    run_trials_batch_with_duplicates,
    run_trials_sequential,
)
from repro.core.rng import draw_types
from repro.models import ziff_model
from repro.partition import Partition, five_chunk_partition, modular_tiling
from repro.partition.partition import conflict_displacements

MODEL = ziff_model()


# ----------------------------------------------------------------------
# lattice geometry
# ----------------------------------------------------------------------

lattice_shapes = st.tuples(st.integers(2, 12), st.integers(2, 12))
offsets_2d = st.tuples(st.integers(-6, 6), st.integers(-6, 6))


class TestLatticeProperties:
    @given(shape=lattice_shapes, off=offsets_2d)
    @settings(max_examples=60, deadline=None)
    def test_neighbor_map_is_permutation(self, shape, off):
        lat = Lattice(shape)
        m = lat.neighbor_map(off)
        assert np.array_equal(np.sort(m), np.arange(lat.n_sites))

    @given(shape=lattice_shapes, a=offsets_2d, b=offsets_2d)
    @settings(max_examples=60, deadline=None)
    def test_translation_composition(self, shape, a, b):
        lat = Lattice(shape)
        ab = tuple(x + y for x, y in zip(a, b))
        composed = lat.neighbor_map(b)[lat.neighbor_map(a)]
        assert np.array_equal(composed, lat.neighbor_map(ab))

    @given(shape=lattice_shapes, flat=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_coords_roundtrip(self, shape, flat):
        lat = Lattice(shape)
        flat %= lat.n_sites
        assert lat.flat_index(lat.coords(flat)) == flat


# ----------------------------------------------------------------------
# partitions
# ----------------------------------------------------------------------

class TestPartitionProperties:
    @given(
        side0=st.integers(2, 10),
        side1=st.integers(2, 10),
        m=st.integers(1, 8),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_label_partition_invariants(self, side0, side1, m, seed):
        """Any label assignment yields disjoint chunks covering Omega."""
        lat = Lattice((side0, side1))
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, m, lat.n_sites)
        p = Partition.from_labels(lat, labels)
        total = np.concatenate(p.chunks)
        assert np.array_equal(np.sort(total), np.arange(lat.n_sites))
        assert all(c.size > 0 for c in p.chunks)

    @given(mult=st.integers(1, 4), coeff_a=st.integers(0, 4), coeff_b=st.integers(0, 4), m=st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_modular_tiling_agrees_with_checker(self, mult, coeff_a, coeff_b, m):
        """The infinite-lattice criterion matches actual validation when
        lattice sides are multiples of m."""
        if coeff_a == 0 and coeff_b == 0:
            return
        lat = Lattice((m * mult * 2, m * mult * 2))
        from repro.partition.tilings import _tiling_is_conflict_free

        displacements = conflict_displacements(MODEL.union_neighborhood())
        predicted = _tiling_is_conflict_free(displacements, m, (coeff_a, coeff_b))
        try:
            p = modular_tiling(lat, m, (coeff_a, coeff_b))
        except ValueError:
            return  # degenerate labelling with empty chunks
        actual, _ = p.check_conflict_free(MODEL)
        assert actual == predicted

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_conflict_free_means_no_shared_touched_sites(self, seed):
        """Direct statement of the non-overlap rule: pick any chunk and
        any two distinct sites in it; their union neighborhoods are
        disjoint."""
        lat = Lattice((10, 10))
        p = five_chunk_partition(lat)
        rng = np.random.default_rng(seed)
        chunk = p.chunks[rng.integers(0, p.m)]
        s, t = rng.choice(chunk, size=2, replace=False)
        offs = MODEL.union_neighborhood()
        nb_s = {int(lat.neighbor_map(o)[s]) for o in offs}
        nb_t = {int(lat.neighbor_map(o)[t]) for o in offs}
        assert not (nb_s & nb_t)


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------

class TestKernelProperties:
    @given(seed=st.integers(0, 2**31), chunk_idx=st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_batch_equals_sequential_on_chunks(self, seed, chunk_idx):
        """The core commutation property behind the paper's parallelism."""
        lat = Lattice((10, 10))
        comp = MODEL.compile(lat)
        p = five_chunk_partition(lat)
        rng = np.random.default_rng(seed)
        state0 = rng.integers(0, 3, lat.n_sites).astype(np.uint8)
        chunk = p.chunks[chunk_idx]
        types = draw_types(rng, comp.type_cum, chunk.size)
        a, b = state0.copy(), state0.copy()
        na = run_trials_sequential(a, comp, chunk, types)
        nb = run_trials_batch(b, comp, chunk, types)
        assert na == nb
        assert np.array_equal(a, b)

    @given(seed=st.integers(0, 2**31), n_trials=st.integers(1, 300))
    @settings(max_examples=30, deadline=None)
    def test_duplicates_batch_equals_sequential(self, seed, n_trials):
        lat = Lattice((10, 10))
        comp = MODEL.compile(lat)
        p = five_chunk_partition(lat)
        rng = np.random.default_rng(seed)
        state0 = rng.integers(0, 3, lat.n_sites).astype(np.uint8)
        chunk = p.chunks[int(rng.integers(0, 5))]
        sites = chunk[rng.integers(0, chunk.size, n_trials)]
        types = draw_types(rng, comp.type_cum, n_trials)
        a, b = state0.copy(), state0.copy()
        na = run_trials_sequential(a, comp, sites, types)
        nb = run_trials_batch_with_duplicates(b, comp, sites, types)
        assert na == nb
        assert np.array_equal(a, b)

    @given(
        values=st.lists(st.integers(0, 8), min_size=1, max_size=60)
    )
    @settings(max_examples=60, deadline=None)
    def test_occurrence_index_definition(self, values):
        arr = np.array(values)
        occ = _occurrence_index(arr)
        for i, v in enumerate(values):
            assert occ[i] == values[:i].count(v)

    @given(seed=st.integers(0, 2**31), n_trials=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_state_codes_stay_valid(self, seed, n_trials):
        """No trial stream can write a code outside the species domain."""
        lat = Lattice((8, 8))
        comp = MODEL.compile(lat)
        rng = np.random.default_rng(seed)
        state = rng.integers(0, 3, lat.n_sites).astype(np.uint8)
        sites = rng.integers(0, lat.n_sites, n_trials).astype(np.intp)
        types = draw_types(rng, comp.type_cum, n_trials)
        run_trials_sequential(state, comp, sites, types)
        assert state.max(initial=0) < len(MODEL.species)


# ----------------------------------------------------------------------
# conservation laws under simulation
# ----------------------------------------------------------------------

class TestConservationProperties:
    @given(seed=st.integers(0, 2**31), density=st.floats(0.05, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_diffusion_conserves_particles_under_pndca(self, seed, density):
        from repro.ca import PNDCA
        from repro.models import diffusion_model_2d, random_gas

        model = diffusion_model_2d()
        lat = Lattice((10, 10))
        rng = np.random.default_rng(seed)
        initial = random_gas(lat, model, density, rng)
        n0 = int(initial.counts()[1])
        p = five_chunk_partition(lat)
        p.validate_conflict_free(model)
        sim = PNDCA(model, lat, seed=seed, partition=p, initial=initial)
        res = sim.run(until=2.0)
        assert int(res.final_state.counts()[1]) == n0

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_pt100_species_conserved_total(self, seed):
        from repro.dmc import RSM
        from repro.models import hex_surface, pt100_model

        model = pt100_model()
        lat = Lattice((5, 5))
        sim = RSM(model, lat, seed=seed, initial=hex_surface(lat, model))
        res = sim.run(until=1.0)
        counts = res.final_state.counts()
        assert counts.sum() == lat.n_sites
        # O never occupies a hex-phase site (no such species exists):
        # every code stays within the 5-species domain
        assert res.final_state.array.max() < 5
