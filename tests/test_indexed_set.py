"""Unit tests for repro.dmc.indexed_set."""

import numpy as np
import pytest

from repro.dmc.indexed_set import IndexedSet


class TestIndexedSet:
    def test_add_and_contains(self):
        s = IndexedSet([1, 2])
        assert 1 in s and 3 not in s
        assert len(s) == 2

    def test_add_returns_newness(self):
        s = IndexedSet()
        assert s.add(5)
        assert not s.add(5)
        assert len(s) == 1

    def test_discard(self):
        s = IndexedSet([1, 2, 3])
        assert s.discard(2)
        assert not s.discard(2)
        assert 2 not in s
        assert sorted(s) == [1, 3]

    def test_discard_last_element(self):
        s = IndexedSet([1])
        s.discard(1)
        assert len(s) == 0

    def test_swap_with_last_keeps_positions_consistent(self):
        s = IndexedSet(range(10))
        s.discard(0)  # last element (9) swaps into position 0
        s.discard(9)  # must still be removable
        assert sorted(s) == list(range(1, 9))

    def test_choose_uniform(self):
        s = IndexedSet([10, 20, 30, 40])
        rng = np.random.default_rng(0)
        draws = [s.choose(rng) for _ in range(8000)]
        freqs = {v: draws.count(v) / 8000 for v in (10, 20, 30, 40)}
        for f in freqs.values():
            assert f == pytest.approx(0.25, abs=0.03)

    def test_choose_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedSet().choose(np.random.default_rng(0))

    def test_clear(self):
        s = IndexedSet([1, 2])
        s.clear()
        assert len(s) == 0
        assert 1 not in s

    def test_stress_against_reference_set(self):
        rng = np.random.default_rng(42)
        s = IndexedSet()
        ref: set[int] = set()
        for _ in range(3000):
            x = int(rng.integers(0, 50))
            if rng.random() < 0.5:
                assert s.add(x) == (x not in ref)
                ref.add(x)
            else:
                assert s.discard(x) == (x in ref)
                ref.discard(x)
            assert len(s) == len(ref)
        assert sorted(s) == sorted(ref)
