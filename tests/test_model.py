"""Unit tests for repro.core.model."""

import pytest

from repro.core import Lattice, Model, ReactionType
from repro.core.species import SpeciesRegistry


def _rt(name, rate=1.0, group=""):
    return ReactionType(name, [((0, 0), "*", "A")], rate, group=group)


class TestConstruction:
    def test_basic(self):
        m = Model(["*", "A"], [_rt("ads", 2.0)], name="m")
        assert m.n_types == 1
        assert m.total_rate == 2.0
        assert m.ndim == 2
        assert list(m.species) == ["*", "A"]

    def test_accepts_registry(self):
        reg = SpeciesRegistry(["*", "A"])
        m = Model(reg, [_rt("ads")])
        assert m.species is reg
        assert reg.frozen

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Model(["*", "A"], [_rt("x"), _rt("x")])

    def test_unknown_species_rejected(self):
        rt = ReactionType("r", [((0, 0), "*", "B")], 1.0)
        with pytest.raises(ValueError, match="unknown species 'B'"):
            Model(["*", "A"], [rt])

    def test_mixed_dimensionality_rejected(self):
        rt1 = ReactionType("a", [((0, 0), "*", "A")], 1.0)
        rt2 = ReactionType("b", [((0,), "*", "A")], 1.0)
        with pytest.raises(ValueError, match="dimensionality"):
            Model(["*", "A"], [rt1, rt2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Model(["*"], [])

    def test_rates_read_only(self):
        m = Model(["*", "A"], [_rt("ads")])
        with pytest.raises(ValueError):
            m.rates[0] = 5.0


class TestLookups:
    def test_type_index(self):
        m = Model(["*", "A"], [_rt("a"), _rt("b")])
        assert m.type_index("b") == 1
        with pytest.raises(KeyError):
            m.type_index("zzz")

    def test_groups(self, ziff):
        assert ziff.groups() == ["CO+O", "O2_ads", "CO_ads"]

    def test_types_in_group(self, ziff):
        assert ziff.types_in_group("CO+O") == [0, 1, 2, 3]
        assert ziff.types_in_group("CO_ads") == [6]
        with pytest.raises(KeyError):
            ziff.types_in_group("nope")

    def test_union_neighborhood(self, ziff):
        assert set(ziff.union_neighborhood()) == {
            (0, 0), (1, 0), (0, 1), (-1, 0), (0, -1)
        }

    def test_empty_code(self, ziff):
        assert ziff.empty_code() == 0


class TestWithRates:
    def test_replaces_group(self, ziff):
        m2 = ziff.with_rates({"CO+O": 9.0})
        for i in m2.types_in_group("CO+O"):
            assert m2.reaction_types[i].rate == 9.0
        # untouched types keep their rates
        assert m2.reaction_types[m2.type_index("CO_ads")].rate == 1.0

    def test_replaces_single_name(self, ziff):
        m2 = ziff.with_rates({"O2_ads(0)": 7.0})
        assert m2.reaction_types[m2.type_index("O2_ads(0)")].rate == 7.0
        assert m2.reaction_types[m2.type_index("O2_ads(1)")].rate == 0.5

    def test_unknown_key_raises(self, ziff):
        with pytest.raises(KeyError):
            ziff.with_rates({"nope": 1.0})

    def test_total_rate_updated(self, ziff):
        m2 = ziff.with_rates({"CO_ads": 5.0})
        assert m2.total_rate == pytest.approx(ziff.total_rate + 4.0)


class TestCompileGuards:
    def test_dimension_mismatch(self, adsorption_1d):
        with pytest.raises(ValueError, match=r"1-d.*2-d|2-d.*1-d"):
            adsorption_1d.compile(Lattice((4, 4)))

    def test_pattern_larger_than_lattice(self, ziff):
        with pytest.raises(ValueError, match="smaller than a reaction pattern"):
            ziff.compile(Lattice((1, 10)))

    def test_describe_contains_all_types(self, ziff):
        text = ziff.describe()
        for rt in ziff.reaction_types:
            assert rt.name in text
