"""Unit tests for repro.partition.tilings."""

import numpy as np
import pytest

from repro.core import Lattice
from repro.partition.tilings import (
    block_partition,
    checkerboard,
    find_modular_tiling,
    five_chunk_partition,
    modular_tiling,
    stripes,
)


class TestModularTiling:
    def test_labels(self):
        lat = Lattice((5, 5))
        p = modular_tiling(lat, 5, (1, 2))
        labels = p.grid_labels()
        assert labels[0].tolist() == [0, 2, 4, 1, 3]
        assert labels[1].tolist() == [1, 3, 0, 2, 4]

    def test_equal_chunks_when_divisible(self):
        p = modular_tiling(Lattice((10, 10)), 5, (1, 2))
        assert set(p.sizes.tolist()) == {20}

    def test_validation(self):
        lat = Lattice((4, 4))
        with pytest.raises(ValueError):
            modular_tiling(lat, 0, (1, 1))
        with pytest.raises(ValueError):
            modular_tiling(lat, 2, (1,))

    def test_1d(self):
        p = modular_tiling(Lattice((9,)), 3, (1,))
        assert p.m == 3
        assert p.sizes.tolist() == [3, 3, 3]


class TestFiveChunk:
    def test_valid_and_optimal(self, ziff):
        lat = Lattice((10, 10))
        p = five_chunk_partition(lat)
        assert p.m == 5
        ok, reason = p.check_conflict_free(ziff)
        assert ok, reason

    def test_wrap_failure_on_bad_side(self, ziff):
        # 12 is not a multiple of 5: the tiling wraps inconsistently
        p = five_chunk_partition(Lattice((12, 12)))
        ok, _ = p.check_conflict_free(ziff)
        assert not ok

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            five_chunk_partition(Lattice((10,)))


class TestSearch:
    def test_finds_five_for_ziff(self, ziff):
        m, coeffs = find_modular_tiling(ziff)
        assert m == 5
        # the found tiling must actually be conflict-free on a lattice
        p = modular_tiling(Lattice((2 * m * 5, 2 * m * 5)), m, coeffs)
        ok, reason = p.check_conflict_free(ziff)
        assert ok, reason

    def test_finds_two_for_1d_pairs(self, adsorption_1d):
        from repro.core import Model, ReactionType

        hop = Model(
            ["*", "A"],
            [
                ReactionType("r", [((0,), "A", "*"), ((1,), "*", "A")], 1.0),
                ReactionType("l", [((0,), "A", "*"), ((-1,), "*", "A")], 1.0),
            ],
        )
        m, coeffs = find_modular_tiling(hop)
        assert m == 3  # neighborhood spans {-1,0,1}: difference set {±1, ±2}

    def test_onsite_model(self, adsorption_1d):
        m, _ = find_modular_tiling(adsorption_1d)
        assert m == 2  # no conflicts at all: any tiling works

    def test_raises_when_not_found(self, ziff):
        with pytest.raises(ValueError):
            find_modular_tiling(ziff, max_m=2)


class TestCheckerboardStripes:
    def test_checkerboard_labels(self):
        p = checkerboard(Lattice((4, 4)))
        g = p.grid_labels()
        assert g[0].tolist() == [0, 1, 0, 1]
        assert g[1].tolist() == [1, 0, 1, 0]

    def test_checkerboard_1d(self):
        p = checkerboard(Lattice((6,)))
        assert p.m == 2

    def test_stripes(self):
        p = stripes(Lattice((4, 4)), axis=1, m=2)
        g = p.grid_labels()
        assert g[0].tolist() == [0, 1, 0, 1]
        assert g[1].tolist() == [0, 1, 0, 1]

    def test_stripes_axis_validation(self):
        with pytest.raises(ValueError):
            stripes(Lattice((4, 4)), axis=2)


class TestBlocks:
    def test_1d_blocks(self):
        p = block_partition(Lattice((9,)), (3,))
        assert p.m == 3
        assert p.chunks[0].tolist() == [0, 1, 2]

    def test_1d_blocks_shifted(self):
        p = block_partition(Lattice((9,)), (3,), shift=(1,))
        labels = p.chunk_of()
        # sites 1,2,3 share a block after shifting by one
        assert labels[1] == labels[2] == labels[3]
        assert labels[0] != labels[1]

    def test_2d_blocks(self):
        p = block_partition(Lattice((4, 6)), (2, 3))
        assert p.m == 4
        assert set(p.sizes.tolist()) == {6}

    def test_divisibility_required(self):
        with pytest.raises(ValueError):
            block_partition(Lattice((9,)), (2,))

    def test_not_conflict_free_for_pairs(self, ziff):
        p = block_partition(Lattice((10, 10)), (5, 5))
        ok, _ = p.check_conflict_free(ziff)
        assert not ok
