"""Unit tests for repro.partition.tilings."""

import pytest

from repro.core import Lattice
from repro.partition.tilings import (
    block_partition,
    checkerboard,
    find_modular_tiling,
    five_chunk_partition,
    modular_tiling,
    stripes,
)


class TestModularTiling:
    def test_labels(self):
        lat = Lattice((5, 5))
        p = modular_tiling(lat, 5, (1, 2))
        labels = p.grid_labels()
        assert labels[0].tolist() == [0, 2, 4, 1, 3]
        assert labels[1].tolist() == [1, 3, 0, 2, 4]

    def test_equal_chunks_when_divisible(self):
        p = modular_tiling(Lattice((10, 10)), 5, (1, 2))
        assert set(p.sizes.tolist()) == {20}

    def test_validation(self):
        lat = Lattice((4, 4))
        with pytest.raises(ValueError):
            modular_tiling(lat, 0, (1, 1))
        with pytest.raises(ValueError):
            modular_tiling(lat, 2, (1,))

    def test_1d(self):
        p = modular_tiling(Lattice((9,)), 3, (1,))
        assert p.m == 3
        assert p.sizes.tolist() == [3, 3, 3]


class TestFiveChunk:
    def test_valid_and_optimal(self, ziff):
        lat = Lattice((10, 10))
        p = five_chunk_partition(lat)
        assert p.m == 5
        ok, reason = p.check_conflict_free(ziff)
        assert ok, reason

    def test_wrap_failure_on_bad_side(self, ziff):
        # 12 is not a multiple of 5: the tiling wraps inconsistently
        p = five_chunk_partition(Lattice((12, 12)))
        ok, _ = p.check_conflict_free(ziff)
        assert not ok

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            five_chunk_partition(Lattice((10,)))


class TestSearch:
    def test_finds_five_for_ziff(self, ziff):
        m, coeffs = find_modular_tiling(ziff)
        assert m == 5
        # the found tiling must actually be conflict-free on a lattice
        p = modular_tiling(Lattice((2 * m * 5, 2 * m * 5)), m, coeffs)
        ok, reason = p.check_conflict_free(ziff)
        assert ok, reason

    def test_finds_two_for_1d_pairs(self, adsorption_1d):
        from repro.core import Model, ReactionType

        hop = Model(
            ["*", "A"],
            [
                ReactionType("r", [((0,), "A", "*"), ((1,), "*", "A")], 1.0),
                ReactionType("l", [((0,), "A", "*"), ((-1,), "*", "A")], 1.0),
            ],
        )
        m, coeffs = find_modular_tiling(hop)
        assert m == 3  # neighborhood spans {-1,0,1}: difference set {±1, ±2}

    def test_onsite_model(self, adsorption_1d):
        m, _ = find_modular_tiling(adsorption_1d)
        assert m == 2  # no conflicts at all: any tiling works

    def test_raises_when_not_found(self, ziff):
        with pytest.raises(ValueError):
            find_modular_tiling(ziff, max_m=2)


class TestCheckerboardStripes:
    def test_checkerboard_labels(self):
        p = checkerboard(Lattice((4, 4)))
        g = p.grid_labels()
        assert g[0].tolist() == [0, 1, 0, 1]
        assert g[1].tolist() == [1, 0, 1, 0]

    def test_checkerboard_1d(self):
        p = checkerboard(Lattice((6,)))
        assert p.m == 2

    def test_stripes(self):
        p = stripes(Lattice((4, 4)), axis=1, m=2)
        g = p.grid_labels()
        assert g[0].tolist() == [0, 1, 0, 1]
        assert g[1].tolist() == [0, 1, 0, 1]

    def test_stripes_axis_validation(self):
        with pytest.raises(ValueError):
            stripes(Lattice((4, 4)), axis=2)


class TestBlocks:
    def test_1d_blocks(self):
        p = block_partition(Lattice((9,)), (3,))
        assert p.m == 3
        assert p.chunks[0].tolist() == [0, 1, 2]

    def test_1d_blocks_shifted(self):
        p = block_partition(Lattice((9,)), (3,), shift=(1,))
        labels = p.chunk_of()
        # sites 1,2,3 share a block after shifting by one
        assert labels[1] == labels[2] == labels[3]
        assert labels[0] != labels[1]

    def test_2d_blocks(self):
        p = block_partition(Lattice((4, 6)), (2, 3))
        assert p.m == 4
        assert set(p.sizes.tolist()) == {6}

    def test_divisibility_required(self):
        with pytest.raises(ValueError):
            block_partition(Lattice((9,)), (2,))

    def test_not_conflict_free_for_pairs(self, ziff):
        p = block_partition(Lattice((10, 10)), (5, 5))
        ok, _ = p.check_conflict_free(ziff)
        assert not ok


class TestDegenerateLattices:
    """Linter behaviour on 1xN strips and sides not divisible by m."""

    def test_strip_aligned_is_conflict_free(self, ziff):
        from repro.lint import lint_partition

        p = five_chunk_partition(Lattice((1, 10)))
        assert p.find_conflicts(ziff) == []
        assert lint_partition(p, ziff).ok(strict=True)

    def test_strip_misaligned_flags_only_wrap_conflicts(self, ziff):
        """1x7 strip: the tiling is sound, the wrap is not — SR002 only."""
        from repro.lint import lint_partition

        p = five_chunk_partition(Lattice((1, 7)))
        report = lint_partition(p, ziff)
        assert not report.ok()
        assert {d.code for d in report} == {"SR002"}

    def test_strip_witnesses_match_enumeration(self, ziff):
        """Symbolic witnesses are real conflicts of the explicit scan."""
        lat = Lattice((1, 7))
        p = five_chunk_partition(lat)
        symbolic = {
            frozenset((c.site_s, c.site_t)) for c in p.find_conflicts(ziff)
        }
        p.tiling = None  # force the enumerative path
        enumerated = {
            frozenset((c.site_s, c.site_t))
            for c in p.find_conflicts(ziff, limit=100)
        }
        assert symbolic and symbolic <= enumerated

    def test_side_not_divisible_by_five(self, ziff):
        p = five_chunk_partition(Lattice((10, 7)))
        ok, reason = p.check_conflict_free(ziff)
        assert not ok
        # the multi-conflict report names reactions and the shared cell
        assert "share chunk" in reason and "touch cell" in reason

    def test_tiny_strip_degenerates_to_singletons(self, ziff):
        """On 1x5 every residue is its own chunk — trivially fine."""
        from repro.lint import lint_partition

        p = five_chunk_partition(Lattice((1, 5)))
        assert p.m == 5 and all(s == 1 for s in p.sizes)
        assert lint_partition(p, ziff).ok(strict=True)

    def test_both_sides_misaligned(self, ziff):
        from repro.lint import lint_partition

        p = five_chunk_partition(Lattice((7, 7)))
        report = lint_partition(p, ziff)
        assert {d.code for d in report} == {"SR002"}
        d0 = report.diagnostics[0].data
        assert d0["site_s"] != d0["site_t"]
