"""Unit tests for the exact Master Equation propagator."""

import numpy as np
import pytest

from repro.core import Configuration, Lattice, Model, ReactionType
from repro.dmc import RSM, VSSM, MasterEquation


@pytest.fixture
def two_state_model():
    """Single-site flip model A <-> B with rates 2 and 1."""
    return Model(
        ["A", "B"],
        [
            ReactionType("a2b", [((0,), "A", "B")], 2.0),
            ReactionType("b2a", [((0,), "B", "A")], 1.0),
        ],
        name="flip",
    )


class TestConstruction:
    def test_state_space_size(self, two_state_model):
        me = MasterEquation(two_state_model, Lattice((3,)))
        assert me.n_states == 8

    def test_refuses_large_state_space(self, ziff):
        with pytest.raises(ValueError, match="exceeds"):
            MasterEquation(ziff, Lattice((5, 5)))

    def test_encode_decode_roundtrip(self, two_state_model):
        me = MasterEquation(two_state_model, Lattice((3,)))
        for c in range(me.n_states):
            assert me.encode(me.decode(c)) == c

    def test_generator_columns_sum_to_zero(self, two_state_model):
        me = MasterEquation(two_state_model, Lattice((2,)))
        w = me.generator.toarray()
        assert np.allclose(w.sum(axis=0), 0.0)


class TestAnalyticSolution:
    """Single site A<->B has the textbook two-state solution."""

    def test_against_closed_form(self, two_state_model):
        me = MasterEquation(two_state_model, Lattice((1,)))
        p0 = np.array([1.0, 0.0])  # start in A
        times = [0.25, 0.5, 1.0, 2.0]
        P = me.propagate(p0, times)
        k1, k2 = 2.0, 1.0
        for row, t in zip(P, times):
            p_a = k2 / (k1 + k2) + k1 / (k1 + k2) * np.exp(-(k1 + k2) * t)
            assert row[me.encode(np.array([0], dtype=np.uint8))] == pytest.approx(p_a, abs=1e-8)

    def test_stationary_distribution(self, two_state_model):
        me = MasterEquation(two_state_model, Lattice((1,)))
        pi = me.stationary()
        assert pi == pytest.approx([1 / 3, 2 / 3], abs=1e-8)

    def test_probability_conserved(self, two_state_model):
        me = MasterEquation(two_state_model, Lattice((3,)))
        p0 = me.delta(Configuration.filled(Lattice((3,)), two_state_model.species, "A"))
        P = me.propagate(p0, [0.5, 1.5])
        assert np.allclose(P.sum(axis=1), 1.0)


class TestCoverage:
    def test_coverage_vector(self, two_state_model):
        me = MasterEquation(two_state_model, Lattice((2,)))
        theta = me.coverage_vector("A")
        # states: AA, BA, AB, BB in base-2 little-endian coding
        assert sorted(theta.tolist()) == [0.0, 0.5, 0.5, 1.0]

    def test_expected_coverage_from_delta(self, two_state_model):
        lat = Lattice((2,))
        me = MasterEquation(two_state_model, lat)
        cfg = Configuration.filled(lat, two_state_model.species, "A")
        assert me.expected_coverage(me.delta(cfg), "A") == pytest.approx(1.0)


class TestPropagateValidation:
    def test_times_must_increase(self, two_state_model):
        me = MasterEquation(two_state_model, Lattice((1,)))
        with pytest.raises(ValueError):
            me.propagate(np.array([1.0, 0.0]), [1.0, 0.5])

    def test_p0_must_normalise(self, two_state_model):
        me = MasterEquation(two_state_model, Lattice((1,)))
        with pytest.raises(ValueError):
            me.propagate(np.array([0.7, 0.7]), [1.0])


class TestGroundTruthVsSimulators:
    """The headline correctness test: ensemble DMC == exact ME."""

    @pytest.mark.parametrize("cls", [RSM, VSSM])
    def test_ziff_2x2_ensemble_matches_me(self, ziff, cls):
        lat = Lattice((2, 2))
        me = MasterEquation(ziff, lat)
        p0 = me.delta(Configuration.empty(lat, ziff.species))
        t_obs = 1.0
        exact_co = float(me.expected_coverage(me.propagate(p0, [t_obs])[0], "CO"))
        exact_o = float(me.expected_coverage(me.propagate(p0, [t_obs])[0], "O"))
        n_runs = 300
        cos, os_ = [], []
        for seed in range(n_runs):
            res = cls(ziff, lat, seed=seed).run(until=t_obs)
            cos.append(res.final_state.coverage("CO"))
            os_.append(res.final_state.coverage("O"))
        # standard error ~ 0.5/sqrt(300) ~ 0.03; allow 4 sigma
        assert np.mean(cos) == pytest.approx(exact_co, abs=0.06)
        assert np.mean(os_) == pytest.approx(exact_o, abs=0.06)
