"""Unit tests for repro.core.state."""

import numpy as np
import pytest

from repro.core import Configuration, Lattice
from repro.core.species import SpeciesRegistry


@pytest.fixture
def sp():
    return SpeciesRegistry(["*", "CO", "O"]).freeze()


@pytest.fixture
def lat():
    return Lattice((4, 4))


class TestConstructors:
    def test_empty(self, lat, sp):
        c = Configuration.empty(lat, sp)
        assert c.coverage("*") == 1.0
        assert c.array.dtype.name == "uint8"

    def test_filled(self, lat, sp):
        c = Configuration.filled(lat, sp, "O")
        assert c.coverage("O") == 1.0

    def test_random_fractions(self, lat, sp, rng):
        c = Configuration.random(Lattice((50, 50)), sp, {"CO": 0.3, "O": 0.2}, rng)
        assert c.coverage("CO") == pytest.approx(0.3, abs=0.05)
        assert c.coverage("O") == pytest.approx(0.2, abs=0.05)
        assert c.coverage("*") == pytest.approx(0.5, abs=0.05)

    def test_random_validates(self, lat, sp, rng):
        with pytest.raises(ValueError):
            Configuration.random(lat, sp, {"CO": 1.5}, rng)
        with pytest.raises(ValueError):
            Configuration.random(lat, sp, {"CO": -0.1}, rng)
        with pytest.raises(ValueError):
            Configuration.random(lat, sp, {"*": 0.5, "CO": 0.1}, rng)

    def test_from_grid_2d(self, sp):
        lat = Lattice((2, 2))
        c = Configuration.from_grid(lat, sp, [["*", "CO"], ["O", "*"]])
        assert c.get((0, 1)) == "CO"
        assert c.get((1, 0)) == "O"

    def test_from_grid_1d(self, sp):
        lat = Lattice((3,))
        c = Configuration.from_grid(lat, sp, ["*", "CO", "O"])
        assert c.array.tolist() == [0, 1, 2]

    def test_from_grid_wrong_size(self, sp):
        with pytest.raises(ValueError):
            Configuration.from_grid(Lattice((3,)), sp, ["*", "CO"])

    def test_shape_validation(self, lat, sp):
        with pytest.raises(ValueError, match="flat"):
            Configuration(lat, sp, np.zeros((4, 4), dtype=np.uint8))

    def test_code_validation(self, lat, sp):
        bad = np.full(16, 9, dtype=np.uint8)
        with pytest.raises(ValueError, match="outside"):
            Configuration(lat, sp, bad)


class TestAccessAndMeasurement:
    def test_get_set(self, lat, sp):
        c = Configuration.empty(lat, sp)
        c.set((1, 2), "CO")
        assert c.get((1, 2)) == "CO"
        assert c.get((1, 3)) == "*"

    def test_counts(self, lat, sp):
        c = Configuration.empty(lat, sp)
        c.set((0, 0), "CO")
        c.set((0, 1), "CO")
        c.set((0, 2), "O")
        assert c.counts().tolist() == [13, 2, 1]

    def test_coverages_dict(self, lat, sp):
        c = Configuration.empty(lat, sp)
        c.set((0, 0), "O")
        cov = c.coverages()
        assert cov["O"] == pytest.approx(1 / 16)
        assert sum(cov.values()) == pytest.approx(1.0)

    def test_sites_of(self, lat, sp):
        c = Configuration.empty(lat, sp)
        c.set((0, 3), "CO")
        assert c.sites_of("CO").tolist() == [3]

    def test_copy_is_deep(self, lat, sp):
        c = Configuration.empty(lat, sp)
        d = c.copy()
        d.set((0, 0), "CO")
        assert c.get((0, 0)) == "*"

    def test_equality(self, lat, sp):
        a = Configuration.empty(lat, sp)
        b = Configuration.empty(lat, sp)
        assert a == b
        b.set((0, 0), "CO")
        assert a != b

    def test_grid_is_view(self, lat, sp):
        c = Configuration.empty(lat, sp)
        c.grid()[2, 2] = 1
        assert c.get((2, 2)) == "CO"

    def test_render(self, sp):
        lat = Lattice((2, 2))
        c = Configuration.from_grid(lat, sp, [["*", "CO"], ["O", "*"]])
        assert c.render() == ".C\nO."

    def test_render_custom_symbols(self, sp):
        lat = Lattice((1, 2))
        c = Configuration.from_grid(lat, sp, [["*", "O"]])
        assert c.render({"*": "_", "CO": "c", "O": "o"}) == "_o"
