"""Unit tests for the reaction-type-partitioned CA."""

import numpy as np
import pytest

from repro.ca import TypePartitionedCA, validate_partition_for_single_types
from repro.core import Lattice
from repro.partition import Partition, checkerboard, five_chunk_partition
from repro.partition.typesplit import split_by_orientation


class TestValidation:
    def test_checkerboard_valid_per_single_type(self, ziff, small_lattice):
        validate_partition_for_single_types(checkerboard(small_lattice), ziff)

    def test_single_chunk_invalid_per_single_type(self, ziff, small_lattice):
        with pytest.raises(ValueError, match="single type"):
            validate_partition_for_single_types(
                Partition.single_chunk(small_lattice), ziff
            )

    def test_five_chunk_also_valid(self, ziff, small_lattice):
        # the stronger partition trivially satisfies the weaker rule
        validate_partition_for_single_types(
            five_chunk_partition(small_lattice), ziff
        )


class TestSimulator:
    def test_defaults(self, ziff, small_lattice):
        sim = TypePartitionedCA(ziff, small_lattice, seed=0)
        assert sim.partition.m == 2
        assert sim.type_split.n_subsets == 2
        assert "|T|=2" in sim.algorithm

    def test_step_accounting(self, ziff, small_lattice):
        sim = TypePartitionedCA(ziff, small_lattice, seed=0)
        n = sim._step_block(until=np.inf)
        # |T| sweeps of one chunk (N/2 sites) each = N trials
        assert n == small_lattice.n_sites
        assert sim.n_trials == small_lattice.n_sites

    def test_reproducible(self, ziff, small_lattice):
        a = TypePartitionedCA(ziff, small_lattice, seed=3).run(until=4.0)
        b = TypePartitionedCA(ziff, small_lattice, seed=3).run(until=4.0)
        assert np.array_equal(a.final_state.array, b.final_state.array)

    def test_only_split_types_execute(self, ziff, small_lattice):
        sim = TypePartitionedCA(ziff, small_lattice, seed=1)
        res = sim.run(until=3.0)
        assert res.n_executed > 0
        assert res.executed_per_type.sum() == res.n_executed

    def test_partition_lattice_mismatch(self, ziff, small_lattice):
        cb = checkerboard(Lattice((8, 8)))
        with pytest.raises(ValueError, match="different lattice"):
            TypePartitionedCA(ziff, small_lattice, partition=cb)

    def test_custom_split(self, ziff, small_lattice):
        split = split_by_orientation(ziff)
        sim = TypePartitionedCA(ziff, small_lattice, type_split=split, seed=0)
        assert sim.type_split is split

    def test_split_model_mismatch(self, ziff, small_lattice):
        from repro.models import ziff_model

        other = ziff_model()
        split = split_by_orientation(other)
        with pytest.raises(ValueError, match="different model"):
            TypePartitionedCA(ziff, small_lattice, type_split=split)


class TestKinetics:
    def test_pure_adsorption_shows_ca_bias(self):
        # a single-type model is executed with per-sweep probability 1:
        # the sweeps fill the lattice much faster than the ME's
        # 1 - exp(-t) — the accuracy trade the paper describes
        from repro.core import Model, ReactionType

        model = Model(
            ["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 1.0)]
        )
        lat = Lattice((20, 20))
        cov = (
            TypePartitionedCA(model, lat, seed=0)
            .run(until=1.5)
            .final_state.coverage("A")
        )
        assert cov > 1 - np.exp(-1.5)  # systematically fast

    def test_diluted_adsorption_matches_me(self):
        # when the adsorption is a small share of K, sweep execution
        # approximates the exponential thinning and the kinetics match
        from repro.core import Model, ReactionType

        model = Model(
            ["*", "A"],
            [
                ReactionType("ads", [((0, 0), "*", "A")], 1.0),
                ReactionType("tick", [((0, 0), "*", "*")], 19.0),
            ],
        )
        # per-chunk all-or-nothing filling makes single-run coverage land
        # on {0, 1/2, 1}: only the ensemble mean is constrained.  The
        # exact expectation is 1 - E[(1 - 1/(2*20))^sweeps] ~ 0.78 here.
        lat = Lattice((20, 20))
        covs = [
            TypePartitionedCA(model, lat, seed=s)
            .run(until=1.5)
            .final_state.coverage("A")
            for s in range(24)
        ]
        assert np.mean(covs) == pytest.approx(1 - np.exp(-1.5), abs=0.15)
