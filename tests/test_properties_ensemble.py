"""Property tests for the stacked ensemble engine and its kernels.

Three invariants, fuzzed with hypothesis over random shapes, seeds and
models:

* **replica isolation** — replica ``i`` of an R-replica ensemble is
  bit-identical to the sole replica of a 1-replica ensemble built with
  the same seed: one replica's trials never read or write another's
  row of the stacked state;
* **per-replica conservation** — on a pure diffusion model every
  replica conserves its own particle count exactly, whatever the
  algorithm mixes into the cross-replica batches;
* **interleaved-executor exactness** — the windowed conflict-free
  prefix executor reproduces :func:`run_trials_sequential` on random
  trial streams, for any window size.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Configuration, Lattice
from repro.core.kernels import run_trials_interleaved, run_trials_sequential
from repro.core.rng import make_rng
from repro.ensemble import EnsembleNDCA, EnsemblePNDCA, EnsembleRSM
from repro.models import diffusion_model_2d, ziff_model
from repro.models.diffusion import random_gas
from repro.partition.tilings import five_chunk_partition

ZIFF = ziff_model()
DIFF = diffusion_model_2d()


def _make_ensemble(cls_key, model, lattice, seeds, initial=None):
    if cls_key == "rsm":
        return EnsembleRSM(
            model, lattice, seeds=seeds, initial=initial, block=128
        )
    if cls_key == "ndca":
        return EnsembleNDCA(
            model, lattice, seeds=seeds, initial=initial, order="random"
        )
    p5 = five_chunk_partition(lattice)
    p5.validate_conflict_free(model)
    return EnsemblePNDCA(
        model, lattice, seeds=seeds, initial=initial, partition=p5
    )


class TestReplicaIsolation:
    @given(
        cls_key=st.sampled_from(["rsm", "ndca", "pndca"]),
        seeds=st.lists(
            st.integers(0, 2**31), min_size=2, max_size=5, unique=True
        ),
        pick=st.integers(0, 4),
    )
    @settings(max_examples=10, deadline=None)
    def test_replica_equals_solo_run(self, cls_key, seeds, pick):
        lattice = Lattice((10, 10))
        i = pick % len(seeds)
        big = _make_ensemble(cls_key, ZIFF, lattice, seeds).run(until=1.0)
        solo = _make_ensemble(cls_key, ZIFF, lattice, [seeds[i]]).run(until=1.0)
        assert np.array_equal(big.states[i], solo.states[0])
        assert big.final_times[i] == solo.final_times[0]
        assert big.n_trials[i] == solo.n_trials[0]
        assert np.array_equal(
            big.executed_per_type[i], solo.executed_per_type[0]
        )

    @given(
        side=st.sampled_from([5, 10, 15]),
        seed=st.integers(0, 2**31),
        r=st.integers(2, 6),
    )
    @settings(max_examples=10, deadline=None)
    def test_spawned_prefix_stability(self, side, seed, r):
        """Spawned streams: the first replicas of a larger ensemble match
        those of a smaller one (SeedSequence children are positional)."""
        lattice = Lattice((side, side))
        small = EnsembleRSM(
            ZIFF, lattice, n_replicas=r, seed=seed, block=128
        ).run(until=0.5)
        big = EnsembleRSM(
            ZIFF, lattice, n_replicas=r + 2, seed=seed, block=128
        ).run(until=0.5)
        assert np.array_equal(big.states[:r], small.states)


class TestPerReplicaConservation:
    @given(
        cls_key=st.sampled_from(["rsm", "ndca", "pndca"]),
        density=st.floats(0.1, 0.9),
        seed=st.integers(0, 2**31),
        r=st.integers(2, 5),
    )
    @settings(max_examples=10, deadline=None)
    def test_diffusion_conserves_each_replica(self, cls_key, density, seed, r):
        lattice = Lattice((10, 10))
        initial = random_gas(lattice, DIFF, density, make_rng(seed))
        code_a = DIFF.species.code("A")
        n0 = int(np.count_nonzero(initial.array == code_a))
        ens = _make_ensemble(
            cls_key, DIFF, lattice, list(range(seed % 1000, seed % 1000 + r)),
            initial=initial,
        )
        res = ens.run(until=1.0)
        per_replica = (res.states == code_a).sum(axis=1)
        assert np.all(per_replica == n0)


class TestInterleavedExactness:
    @given(
        seed=st.integers(0, 2**31),
        n_reps=st.integers(1, 6),
        n_trials=st.integers(1, 200),
        window=st.integers(2, 40),
        model_key=st.sampled_from(["ziff", "diff"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_sequential_on_random_streams(
        self, seed, n_reps, n_trials, window, model_key
    ):
        model = ZIFF if model_key == "ziff" else DIFF
        lattice = Lattice((8, 8))
        compiled = model.compile(lattice)
        rng = make_rng(seed)
        n = lattice.n_sites
        sites = rng.integers(0, n, size=(n_reps, n_trials)).astype(np.intp)
        types = rng.integers(
            0, len(compiled.types), size=(n_reps, n_trials)
        ).astype(np.intp)
        if model_key == "diff":
            base = random_gas(lattice, model, 0.5, rng).array
        else:
            base = Configuration.random(
                lattice, model.species,
                {"CO": 0.3, "O": 0.3}, rng,
            ).array
        stacked = np.ascontiguousarray(np.tile(base, (n_reps, 1)))
        counts = np.zeros((n_reps, len(compiled.types)), dtype=np.int64)
        starts = np.zeros(n_reps, dtype=np.intp)
        stops = np.full(n_reps, n_trials, dtype=np.intp)
        n_exec = run_trials_interleaved(
            stacked, compiled, sites, types, starts, stops,
            counts=counts, window=window,
        )
        ref_exec = 0
        for r in range(n_reps):
            ref = base.copy()
            ref_counts = np.zeros(len(compiled.types), dtype=np.int64)
            ref_exec += run_trials_sequential(
                ref, compiled, sites[r], types[r], counts=ref_counts
            )
            assert np.array_equal(stacked[r], ref), f"replica {r} diverged"
            assert np.array_equal(counts[r], ref_counts)
        assert n_exec == ref_exec

    @given(
        seed=st.integers(0, 2**31),
        n_trials=st.integers(0, 60),
    )
    @settings(max_examples=10, deadline=None)
    def test_partial_ranges(self, seed, n_trials):
        """Per-replica [start, stop) ranges execute exactly that slice."""
        lattice = Lattice((8, 8))
        compiled = ZIFF.compile(lattice)
        rng = make_rng(seed)
        n = lattice.n_sites
        blk = 64
        n_reps = 3
        sites = rng.integers(0, n, size=(n_reps, blk)).astype(np.intp)
        types = rng.integers(
            0, len(compiled.types), size=(n_reps, blk)
        ).astype(np.intp)
        base = Configuration.empty(lattice, ZIFF.species).array
        stacked = np.ascontiguousarray(np.tile(base, (n_reps, 1)))
        starts = np.array([0, 5, blk], dtype=np.intp)
        stops = np.array(
            [min(n_trials, blk), min(5 + n_trials, blk), blk], dtype=np.intp
        )
        run_trials_interleaved(stacked, compiled, sites, types, starts, stops)
        for r in range(n_reps):
            ref = base.copy()
            run_trials_sequential(
                ref, compiled, sites[r][starts[r]:stops[r]],
                types[r][starts[r]:stops[r]],
            )
            assert np.array_equal(stacked[r], ref)
