"""Unit tests for the Random Selection Method."""

import numpy as np
import pytest

from repro.core import Lattice, Model, ReactionType
from repro.dmc import RSM, CoverageObserver


class TestBasics:
    def test_reproducible(self, ziff):
        lat = Lattice((10, 10))
        a = RSM(ziff, lat, seed=5).run(until=3.0)
        b = RSM(ziff, lat, seed=5).run(until=3.0)
        assert np.array_equal(a.final_state.array, b.final_state.array)
        assert a.n_trials == b.n_trials

    def test_different_seeds_differ(self, ziff):
        lat = Lattice((10, 10))
        a = RSM(ziff, lat, seed=1).run(until=3.0)
        b = RSM(ziff, lat, seed=2).run(until=3.0)
        assert not np.array_equal(a.final_state.array, b.final_state.array)

    def test_stops_at_until(self, ziff):
        res = RSM(ziff, Lattice((8, 8)), seed=0).run(until=2.5)
        assert res.final_time == pytest.approx(2.5)

    def test_block_size_validation(self, ziff):
        with pytest.raises(ValueError):
            RSM(ziff, Lattice((8, 8)), block=0)

    def test_trials_scale_with_nk(self, ziff):
        # expected trials = N * K * t
        lat = Lattice((10, 10))
        res = RSM(ziff, lat, seed=0).run(until=4.0)
        expected = lat.n_sites * ziff.total_rate * 4.0
        assert res.n_trials == pytest.approx(expected, rel=0.1)

    def test_small_blocks_same_distribution(self, ziff):
        # block size must not change the physics (only rng stream order)
        lat = Lattice((10, 10))
        covs = []
        for block in (64, 8192):
            r = RSM(ziff, lat, seed=9, block=block).run(until=5.0)
            covs.append(r.final_state.coverage("O"))
        assert abs(covs[0] - covs[1]) < 0.25  # same regime, different stream


class TestEventTrace:
    def test_events_recorded_with_times(self, ziff):
        sim = RSM(ziff, Lattice((8, 8)), seed=0, record_events=True)
        res = sim.run(until=2.0)
        tr = res.events
        assert tr is not None and len(tr) == res.n_executed
        assert (np.diff(tr.times) >= 0).all()
        assert tr.times[-1] <= 2.0

    def test_event_types_valid(self, ziff):
        sim = RSM(ziff, Lattice((8, 8)), seed=0, record_events=True)
        res = sim.run(until=2.0)
        assert res.events.type_indices.max() < ziff.n_types


class TestAdsorptionKinetics:
    """Pure adsorption: coverage follows 1 - exp(-k t) exactly."""

    def test_langmuir_curve(self):
        model = Model(
            ["*", "A"],
            [ReactionType("ads", [((0, 0), "*", "A")], 0.8)],
            name="ads",
        )
        lat = Lattice((40, 40))
        obs = CoverageObserver(0.5, species=("A",))
        res = RSM(model, lat, seed=1, observers=[obs]).run(until=4.0)
        expected = 1.0 - np.exp(-0.8 * res.times)
        assert np.allclose(res.coverage["A"], expected, atol=0.04)

    def test_absorbing_state_reached(self):
        model = Model(
            ["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 5.0)]
        )
        res = RSM(model, Lattice((6, 6)), seed=0).run(until=10.0)
        assert res.final_state.coverage("A") == 1.0


class TestObserverExactness:
    def test_sampling_immune_to_block_boundaries(self, ziff):
        # the same run sampled with different block sizes gives the
        # same coverage at the same grid times (same seed, same stream
        # per block size - so compare only the t=0 sample and the
        # monotone structure)
        lat = Lattice((10, 10))
        res = RSM(
            ziff, lat, seed=4, block=17, observers=[CoverageObserver(0.25)]
        ).run(until=3.0)
        assert len(res.times) == 13
        assert res.coverage["*"][0] == 1.0
        # coverage of vacancies never increases in ZGB without desorption
        # until reactions kick in - just verify values are in [0, 1]
        for series in res.coverage.values():
            assert ((series >= 0) & (series <= 1)).all()
