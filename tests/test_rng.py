"""Unit tests for repro.core.rng."""

import numpy as np
import pytest

from repro.core.rng import (
    draw_exponentials,
    draw_sites,
    draw_types,
    make_rng,
    spawn_rngs,
)


class TestMakeRng:
    def test_from_int_reproducible(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_none_allowed(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_independent_streams(self):
        a, b = spawn_rngs(3, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_reproducible(self):
        x = [g.random() for g in spawn_rngs(5, 3)]
        y = [g.random() for g in spawn_rngs(5, 3)]
        assert x == y

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestDraws:
    def test_draw_types_distribution(self):
        cum = np.array([0.25, 1.0])
        draws = draw_types(make_rng(0), cum, 40000)
        frac = (draws == 0).mean()
        assert frac == pytest.approx(0.25, abs=0.02)
        assert draws.dtype == np.intp

    def test_draw_sites_range(self):
        s = draw_sites(make_rng(0), 50, 10000)
        assert s.min() >= 0 and s.max() < 50

    def test_draw_exponentials_mean(self):
        x = draw_exponentials(make_rng(0), rate=4.0, n=50000)
        assert x.mean() == pytest.approx(0.25, rel=0.05)
        assert (x >= 0).all()

    def test_draw_exponentials_validates(self):
        with pytest.raises(ValueError):
            draw_exponentials(make_rng(0), rate=0.0, n=5)
