"""Unit tests for repro.core.reaction."""

import pytest

from repro.core.reaction import (
    ORIENTATIONS_2,
    ORIENTATIONS_4,
    Change,
    ReactionType,
    oriented,
    rotate_offset,
)


class TestChange:
    def test_coerces_offset_to_int_tuple(self):
        c = Change([1.0, 0.0], "A", "B")  # type: ignore[arg-type]
        assert c.offset == (1, 0)

    def test_translated(self):
        c = Change((1, 0), "A", "B")
        assert c.translated((2, 3)).offset == (3, 3)
        assert c.translated((2, 3)).src == "A"


class TestReactionType:
    def test_basic_properties(self):
        rt = ReactionType(
            "r", [((0, 0), "*", "O"), ((1, 0), "*", "O")], rate=0.5
        )
        assert rt.n_sites == 2
        assert rt.neighborhood == ((0, 0), (1, 0))
        assert rt.source_pattern == ("*", "*")
        assert rt.target_pattern == ("O", "O")
        assert rt.species() == {"*", "O"}
        assert rt.group == "r"  # defaults to the name

    def test_requires_anchor(self):
        with pytest.raises(ValueError, match="anchor"):
            ReactionType("r", [((1, 0), "A", "B")], 1.0)

    def test_rejects_duplicate_offsets(self):
        with pytest.raises(ValueError, match="duplicate"):
            ReactionType("r", [((0, 0), "A", "B"), ((0, 0), "B", "A")], 1.0)

    def test_rejects_mixed_dimensionality(self):
        with pytest.raises(ValueError, match="dimension"):
            ReactionType("r", [((0, 0), "A", "B"), ((1,), "A", "B")], 1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="positive rate"):
            ReactionType("r", [((0, 0), "A", "B")], 0.0)
        with pytest.raises(ValueError, match="positive rate"):
            ReactionType("r", [((0, 0), "A", "B")], -1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no changes"):
            ReactionType("r", [], 1.0)

    def test_is_null(self):
        assert ReactionType("t", [((0, 0), "A", "A")], 1.0).is_null()
        assert not ReactionType("t", [((0, 0), "A", "B")], 1.0).is_null()

    def test_with_rate(self):
        rt = ReactionType("r", [((0, 0), "A", "B")], 1.0, group="g")
        rt2 = rt.with_rate(3.0)
        assert rt2.rate == 3.0
        assert rt2.name == "r" and rt2.group == "g"

    def test_describe_matches_paper_notation(self):
        rt = ReactionType("r", [((0, 0), "CO", "*"), ((1, 0), "O", "*")], 1.0)
        assert rt.describe() == "{(s,CO,*), (s+(1,0),O,*)}"

    def test_accepts_plain_tuples(self):
        rt = ReactionType("r", (((0, 0), "A", "B"),), 1.0)
        assert isinstance(rt.changes[0], Change)


class TestRotation:
    def test_rotate_identity(self):
        assert rotate_offset((2, 3), (1, 0)) == (2, 3)

    def test_rotate_90(self):
        # east -> north: (1, 0) -> (0, 1)
        assert rotate_offset((1, 0), (0, 1)) == (0, 1)
        assert rotate_offset((0, 1), (0, 1)) == (-1, 0)

    def test_rotate_180(self):
        assert rotate_offset((1, 0), (-1, 0)) == (-1, 0)
        assert rotate_offset((2, 3), (-1, 0)) == (-2, -3)

    def test_rejects_non_unit_direction(self):
        with pytest.raises(ValueError):
            rotate_offset((1, 0), (1, 1))
        with pytest.raises(ValueError):
            rotate_offset((1, 0), (2, 0))


class TestOriented:
    def test_four_orientations_match_paper_order(self):
        rts = oriented(
            "CO+O", [((0, 0), "CO", "*"), ((1, 0), "O", "*")], 2.0,
            directions=ORIENTATIONS_4,
        )
        assert [rt.name for rt in rts] == [
            "CO+O(0)", "CO+O(1)", "CO+O(2)", "CO+O(3)"
        ]
        partners = [rt.changes[1].offset for rt in rts]
        assert partners == [(1, 0), (0, 1), (-1, 0), (0, -1)]

    def test_two_orientations(self):
        rts = oriented(
            "O2", [((0, 0), "*", "O"), ((1, 0), "*", "O")], 0.5,
            directions=ORIENTATIONS_2,
        )
        assert len(rts) == 2
        assert all(rt.rate == 0.5 for rt in rts)

    def test_group_shared(self):
        rts = oriented("x", [((0, 0), "A", "B"), ((1, 0), "B", "A")], 1.0)
        assert {rt.group for rt in rts} == {"x"}

    def test_custom_group(self):
        rts = oriented("x", [((0, 0), "A", "B"), ((1, 0), "B", "A")], 1.0, group="g")
        assert {rt.group for rt in rts} == {"g"}

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            oriented("x", [((0,), "A", "B")], 1.0)
