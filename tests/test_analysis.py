"""Tests for the analysis toolkit."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_oscillations,
    check_exponential_waiting_times,
    common_grid,
    curve_max_dev,
    curve_rmse,
    ensemble_band_distance,
    interevent_times,
    ks_exponential,
    phase_shift,
    resample_uniform,
    run_ensemble,
    type_selection_ratio,
)
from repro.core.events import EventTrace


def poisson_trace(rate: float, n: int, seed: int = 0, type_index: int = 0) -> EventTrace:
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(1.0 / rate, n))
    tr = EventTrace()
    tr.extend(times, np.full(n, type_index, dtype=np.int32), np.zeros(n, dtype=np.intp))
    return tr


class TestWaitingTimes:
    def test_ks_accepts_true_exponential(self):
        samples = np.random.default_rng(0).exponential(0.5, 2000)
        stat, p = ks_exponential(samples, rate=2.0)
        assert p > 0.05

    def test_ks_rejects_wrong_rate(self):
        samples = np.random.default_rng(0).exponential(0.5, 2000)
        _, p = ks_exponential(samples, rate=10.0)
        assert p < 1e-6

    def test_ks_rejects_uniform(self):
        samples = np.random.default_rng(0).uniform(0, 1, 2000)
        _, p = ks_exponential(samples, rate=2.0)
        assert p < 1e-6

    def test_ks_validation(self):
        with pytest.raises(ValueError):
            ks_exponential(np.array([1.0, 2.0]), 1.0)
        with pytest.raises(ValueError):
            ks_exponential(np.ones(10), 0.0)

    def test_interevent_times(self):
        tr = poisson_trace(1.0, 100)
        assert interevent_times(tr).shape == (99,)
        assert interevent_times(tr, type_index=5).size == 0

    def test_type_selection_ratio(self):
        tr = EventTrace()
        for i, t in enumerate([0, 0, 1, 0]):
            tr.append(float(i), t, 0)
        assert type_selection_ratio(tr, 3).tolist() == [0.75, 0.25, 0.0]

    def test_report_passes_for_poisson(self):
        tr = poisson_trace(3.0, 3000)
        rep = check_exponential_waiting_times(tr, 0, expected_rate=3.0)
        assert rep.passed
        assert rep.empirical_rate == pytest.approx(3.0, rel=0.1)
        assert "ok" in str(rep)

    def test_report_fails_for_wrong_rate(self):
        tr = poisson_trace(3.0, 3000)
        rep = check_exponential_waiting_times(tr, 0, expected_rate=9.0)
        assert not rep.passed


class TestOscillations:
    def make_series(self, period=10.0, amp=0.3, t_end=200.0, n=2000, noise=0.0, seed=0):
        t = np.linspace(0, t_end, n)
        y = 0.5 + amp * np.sin(2 * np.pi * t / period)
        if noise:
            y = y + np.random.default_rng(seed).normal(0, noise, n)
        return t, y

    def test_clean_sine(self):
        t, y = self.make_series()
        s = analyze_oscillations(t, y)
        assert s.period == pytest.approx(10.0, rel=0.05)
        assert s.amplitude == pytest.approx(0.3, rel=0.1)
        assert s.strength > 0.9
        assert s.oscillating
        assert len(s.peak_times) >= 10

    def test_noisy_sine_still_detected(self):
        t, y = self.make_series(noise=0.05)
        s = analyze_oscillations(t, y)
        assert s.period == pytest.approx(10.0, rel=0.1)
        assert s.oscillating

    def test_flat_series_not_oscillating(self):
        t = np.linspace(0, 100, 500)
        y = np.full(500, 0.4)
        s = analyze_oscillations(t, y)
        assert not s.oscillating

    def test_pure_noise_not_oscillating(self):
        t = np.linspace(0, 100, 1000)
        y = np.random.default_rng(0).normal(0.5, 0.05, 1000)
        s = analyze_oscillations(t, y)
        assert not s.oscillating

    def test_resample_validation(self):
        with pytest.raises(ValueError):
            resample_uniform(np.array([0.0, 1.0, 0.5]), np.zeros(3))
        with pytest.raises(ValueError):
            resample_uniform(np.array([0.0, 1.0]), np.zeros(2))

    def test_discard_fraction_validation(self):
        t, y = self.make_series()
        with pytest.raises(ValueError):
            analyze_oscillations(t, y, discard_fraction=1.0)


class TestCompare:
    def test_common_grid_overlap(self):
        t1 = np.linspace(0, 10, 50)
        t2 = np.linspace(5, 15, 50)
        grid, a, b = common_grid(t1, t1, t2, t2)
        assert grid[0] == pytest.approx(5.0)
        assert grid[-1] == pytest.approx(10.0)
        assert np.allclose(a, b)

    def test_no_overlap_raises(self):
        with pytest.raises(ValueError):
            common_grid(np.array([0.0, 1.0]), np.zeros(2), np.array([2.0, 3.0]), np.zeros(2))

    def test_rmse_zero_for_identical(self):
        t = np.linspace(0, 10, 100)
        y = np.sin(t)
        assert curve_rmse(t, y, t, y) == 0.0

    def test_rmse_of_constant_offset(self):
        t = np.linspace(0, 10, 100)
        assert curve_rmse(t, np.zeros(100), t, np.full(100, 0.2)) == pytest.approx(0.2)

    def test_max_dev(self):
        t = np.linspace(0, 10, 100)
        y2 = np.zeros(100)
        y2[50] = 1.0
        assert curve_max_dev(t, np.zeros(100), t, y2) > 0.5

    def test_phase_shift_detects_lag(self):
        t = np.linspace(0, 100, 2000)
        y1 = np.sin(2 * np.pi * t / 10)
        y2 = np.sin(2 * np.pi * (t - 2.0) / 10)  # lags by 2
        assert phase_shift(t, y1, t, y2, max_lag_fraction=0.04) == pytest.approx(
            2.0, abs=0.2
        )

    def test_ensemble_band_distance(self):
        t = np.linspace(0, 10, 100)
        mean = np.zeros(100)
        std = np.full(100, 0.1)
        inside = np.full(100, 0.05)
        outside = np.full(100, 0.5)
        assert ensemble_band_distance(t, mean, std, t, inside) == pytest.approx(0.5)
        assert ensemble_band_distance(t, mean, std, t, outside) == pytest.approx(5.0)


class TestEnsemble:
    def test_run_ensemble_statistics(self, ziff):
        from repro.core import Lattice
        from repro.dmc import RSM, CoverageObserver

        def factory(seed):
            return RSM(
                ziff, Lattice((8, 8)), seed=seed,
                observers=[CoverageObserver(0.5, species=("O",))],
            )

        ens = run_ensemble(factory, seeds=range(4), until=3.0)
        assert ens.n_runs == 4
        t, mean, std = ens.band("O")
        assert t.shape == mean.shape == std.shape
        assert (std >= 0).all()
        assert mean[0] == 0.0  # empty lattice at t=0

    def test_requires_observer(self, ziff):
        from repro.core import Lattice
        from repro.dmc import RSM

        with pytest.raises(ValueError, match="CoverageObserver"):
            run_ensemble(lambda s: RSM(ziff, Lattice((6, 6)), seed=s), [0, 1], 1.0)

    def test_requires_seeds(self, ziff):
        with pytest.raises(ValueError):
            run_ensemble(lambda s: None, [], 1.0)
