"""Unit tests for repro.partition.partition."""

import numpy as np
import pytest

from repro.partition.partition import Partition, conflict_displacements


class TestConflictDisplacements:
    def test_von_neumann(self):
        nb = [(0, 0), (1, 0), (0, 1), (-1, 0), (0, -1)]
        d = conflict_displacements(nb)
        assert (0, 0) not in d
        assert (1, 0) in d and (-1, 1) in d and (2, 0) in d
        # difference set of the cross: all |di|+|dj| <= 2 except 0
        expected = {
            (di, dj)
            for di in range(-2, 3)
            for dj in range(-2, 3)
            if 0 < abs(di) + abs(dj) <= 2
        }
        assert set(d) == expected

    def test_single_site(self):
        assert conflict_displacements([(0, 0)]) == []

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            conflict_displacements([])


class TestPartitionConstruction:
    def test_valid(self, small_lattice):
        half = small_lattice.n_sites // 2
        p = Partition(
            small_lattice,
            [np.arange(half), np.arange(half, small_lattice.n_sites)],
        )
        assert p.m == 2
        assert p.sizes.tolist() == [half, half]

    def test_rejects_overlap(self, small_lattice):
        n = small_lattice.n_sites
        with pytest.raises(ValueError):
            Partition(small_lattice, [np.arange(n), np.array([0])])

    def test_rejects_incomplete_cover(self, small_lattice):
        with pytest.raises(ValueError):
            Partition(small_lattice, [np.arange(small_lattice.n_sites - 1)])

    def test_rejects_empty_chunk(self, small_lattice):
        n = small_lattice.n_sites
        with pytest.raises(ValueError):
            Partition(small_lattice, [np.arange(n), np.empty(0, dtype=np.intp)])

    def test_chunks_read_only(self, small_lattice):
        p = Partition.single_chunk(small_lattice)
        with pytest.raises(ValueError):
            p.chunks[0][0] = 5

    def test_from_labels(self, small_lattice):
        labels = np.arange(small_lattice.n_sites) % 4
        p = Partition.from_labels(small_lattice, labels)
        assert p.m == 4
        assert np.array_equal(p.chunk_of(), labels)

    def test_from_labels_grid_shaped(self, small_lattice):
        labels = np.zeros(small_lattice.shape, dtype=int)
        labels[5:] = 1
        p = Partition.from_labels(small_lattice, labels)
        assert p.m == 2

    def test_single_chunk_and_singletons(self, small_lattice):
        assert Partition.single_chunk(small_lattice).m == 1
        assert Partition.singletons(small_lattice).m == small_lattice.n_sites

    def test_grid_labels(self, small_lattice):
        p = Partition.single_chunk(small_lattice)
        assert p.grid_labels().shape == small_lattice.shape


class TestNonOverlapRule:
    def test_five_chunk_valid(self, ziff, small_lattice):
        from repro.partition import five_chunk_partition

        p = five_chunk_partition(small_lattice)
        ok, reason = p.check_conflict_free(ziff)
        assert ok, reason

    def test_single_chunk_invalid(self, ziff, small_lattice):
        p = Partition.single_chunk(small_lattice)
        ok, reason = p.check_conflict_free(ziff)
        assert not ok
        assert "conflict" in reason

    def test_singletons_valid(self, ziff, small_lattice):
        p = Partition.singletons(small_lattice)
        ok, _ = p.check_conflict_free(ziff)
        assert ok

    def test_validate_marks_model(self, ziff, small_lattice):
        from repro.partition import five_chunk_partition

        p = five_chunk_partition(small_lattice)
        assert not p.is_conflict_free(ziff)
        p.validate_conflict_free(ziff)
        assert p.is_conflict_free(ziff)

    def test_validate_raises_with_sites(self, ziff, small_lattice):
        p = Partition.single_chunk(small_lattice)
        with pytest.raises(ValueError, match="non-overlap"):
            p.validate_conflict_free(ziff)

    def test_checkerboard_invalid_for_full_model(self, ziff, small_lattice):
        from repro.partition import checkerboard

        ok, _ = checkerboard(small_lattice).check_conflict_free(ziff)
        assert not ok  # pairs (1,0) conflict across checkerboard colours

    def test_onsite_only_model_any_partition(self, small_lattice):
        from repro.core import Model, ReactionType

        m = Model(
            ["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 1.0)]
        )
        ok, _ = Partition.single_chunk(small_lattice).check_conflict_free(m)
        assert ok  # single-site patterns never conflict
