"""The backend differential suite: compiled tiers are bit-identical.

The claim under test (see ``repro.backends``): a backend is an
*execution detail*.  For every dispatch kernel, every model and every
lattice shape — degenerate ones included — a compiled backend must
produce exactly the arrays the NumPy reference produces: same state
bytes, same counts, same return values, same ``record`` entries, and
at the engine level the same RNG draw accounting and checkpoint
digests.  Exact equality, not statistical agreement.

Layout
------
* registry semantics (resolution, fallback chain, ambient stack);
* the contract-driven fuzz generators (``repro.backends.fuzz``);
* kernel-level differential smoke (fast) and the full
  models x shapes x kernels matrix (marked ``slow``; the CI backend
  matrix job runs it explicitly);
* seeded *mutant* twins the harness must catch — a differential
  harness that cannot fail is not evidence;
* engine-level bit-identity including RNG draw parity
  (``CountingGenerator`` counters) across backends;
* checkpoint portability: a run checkpointed under one backend
  resumes under another (the backend never enters the fingerprint);
* per-backend BENCH records, and the ``slow`` >= 3x speedup gate on
  the sequential hot kernel at 256 x 256.
"""

import time
import warnings

import numpy as np
import pytest

from repro.backends import (
    DISPATCH_KERNELS,
    Backend,
    BackendFallbackWarning,
    KernelSet,
    available_backends,
    backend_names,
    current_backend,
    get_backend,
    register_backend,
    resolve_backend,
    use_backend,
)
from repro.backends.fuzz import (
    argument_grid,
    compare_backends,
    conflict_free_sites,
    fuzz_case,
    fuzz_cases,
)
from repro.core import Lattice, Model, ReactionType
from repro.models import ziff_model

#: every registered non-reference backend that can run on this host
COMPILED = [n for n in available_backends() if n != "numpy"]

requires_compiled = pytest.mark.skipif(
    not COMPILED, reason="no compiled backend available on this host"
)


def _adsorption_1d() -> Model:
    return Model(
        ["*", "A"],
        [ReactionType("ads", [((0,), "*", "A")], 2.0)],
        name="adsorption-1d",
    )


def _model_matrix():
    """(model, lattice-shapes) pairs spanning >= 4 models and degenerate shapes."""
    from repro.models import diffusion_model_2d, ising_model_2d

    return [
        (ziff_model(k_co=1.0, k_o2=0.5, k_co2=2.0), [(10, 10), (2, 8), (16, 2), (3, 5)]),
        (diffusion_model_2d(k_hop=1.0), [(10, 10), (2, 8), (3, 5)]),
        # ising patterns span 3 cells per axis: sides must be >= 3
        (ising_model_2d(beta=0.7), [(6, 6), (16, 3)]),
        (_adsorption_1d(), [(17,), (2,)]),
    ]


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_numpy_always_registered_and_available(self):
        assert "numpy" in backend_names()
        assert "numpy" in available_backends()

    def test_all_tiers_registered_even_when_unavailable(self):
        # numba registers unconditionally; availability is a host fact
        assert {"numpy", "cnative", "numba"} <= set(backend_names())

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("no-such-backend")
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("no-such-backend")

    def test_auto_resolves_highest_available_tier(self):
        be = resolve_backend("auto")
        avail = available_backends()  # already sorted by tier, best first
        assert be.name == avail[0]

    def test_unavailable_backend_falls_back_with_warning(self):
        class Ghost(Backend):
            name = "ghost-tier"
            tier = 99
            fallback = ("numpy",)

            def available(self):
                return False

        register_backend(Ghost())
        try:
            with pytest.warns(BackendFallbackWarning, match="ghost-tier"):
                be = resolve_backend("ghost-tier")
            assert be.name == "numpy"
            # workers re-resolving the master's pick must stay silent
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert resolve_backend("ghost-tier", warn=False).name == "numpy"
        finally:
            from repro.backends import registry

            registry._REGISTRY.pop("ghost-tier", None)

    def test_ambient_stack_nests_and_restores(self):
        assert current_backend().name == "numpy"
        with use_backend("numpy") as outer:
            assert current_backend() is outer
            be = resolve_backend(None)
            assert be is outer
            if COMPILED:
                with use_backend(COMPILED[0]) as inner:
                    assert current_backend() is inner
                assert current_backend() is outer
        assert current_backend().name == "numpy"

    def test_kernel_set_rejects_unknown_overrides(self):
        with pytest.raises(ValueError, match="unknown kernels"):
            KernelSet("bogus", {"not_a_kernel": lambda: None})

    def test_partial_backend_falls_back_to_reference(self):
        from repro.core import kernels as ref

        ks = KernelSet("partial", {})
        for name in DISPATCH_KERNELS:
            assert getattr(ks, name) is getattr(ref, name)

    def test_backend_instance_passes_through(self):
        be = get_backend("numpy")
        assert resolve_backend(be) is be


# ----------------------------------------------------------------------
# the contract-driven generators
# ----------------------------------------------------------------------
class TestArgumentGrid:
    def test_dtypes_resolve_from_contract(self):
        from repro.core.kernels import run_trials_sequential

        grid = argument_grid(run_trials_sequential, {"N": 100, "T": 7})
        assert grid["state"].dtype == np.dtype(np.uint8)
        assert grid["counts"].dtype == np.dtype(np.int64)
        assert grid["state"].shape is None  # sequential declares no shapes

    def test_stacked_shapes_are_replica_indexed(self):
        from repro.core.kernels import run_trials_stacked

        grid = argument_grid(run_trials_stacked, {"R": 4, "N": 64, "T": 5})
        assert grid["states"].shape == (4, 64)
        assert grid["counts"].shape == (4, 5)

    def test_unbound_symbol_resolves_to_none(self):
        from repro.core.kernels import run_trials_stacked

        grid = argument_grid(run_trials_stacked, {"R": 4})
        assert grid["states"].shape is None  # "N" unbound
        assert grid["counts"].shape is None  # "T" unbound

    def test_fuzz_rejects_non_dispatch_kernels(self, ziff, small_lattice, rng):
        comp = ziff.compile(small_lattice)
        with pytest.raises(ValueError, match="not a dispatch kernel"):
            fuzz_case(comp, "seq_tables", rng)


class TestConflictFreeSites:
    @pytest.mark.parametrize("shape", [(10, 10), (2, 8), (3, 5)])
    def test_footprints_pairwise_disjoint(self, ziff, rng, shape):
        comp = ziff.compile(Lattice(shape))
        sites = conflict_free_sites(comp, rng)
        assert sites.size > 0
        seen: set[int] = set()
        for s in sites.tolist():
            cells = {int(m[s]) for ct in comp.types for m in ct.maps}
            assert not (cells & seen)
            seen |= cells

    def test_max_n_caps_the_sample(self, ziff, small_lattice, rng):
        comp = ziff.compile(small_lattice)
        assert conflict_free_sites(comp, rng, max_n=3).size <= 3


# ----------------------------------------------------------------------
# kernel-level differential: smoke (fast) + full matrix (slow)
# ----------------------------------------------------------------------
@requires_compiled
class TestDifferentialSmoke:
    """One fuzzed case per kernel per compiled backend — the fast gate."""

    @pytest.mark.parametrize("kernel_name", DISPATCH_KERNELS)
    def test_bit_identity_on_ziff(self, ziff, small_lattice, kernel_name):
        comp = ziff.compile(small_lattice)
        rng = np.random.default_rng(7)
        for case_no, kwargs in enumerate(
            fuzz_cases(comp, kernel_name, rng, 3, with_record=(
                kernel_name == "run_trials_sequential"
            ))
        ):
            mismatches = compare_backends(
                kernel_name,
                kwargs,
                ("numpy", *COMPILED),
                label=f"ziff 10x10 case {case_no}",
            )
            assert mismatches == []

    @pytest.mark.parametrize("kernel_name", DISPATCH_KERNELS)
    def test_empty_streams(self, ziff, small_lattice, kernel_name):
        comp = ziff.compile(small_lattice)
        rng = np.random.default_rng(0)
        kwargs = fuzz_case(comp, kernel_name, rng)
        for key in ("sites", "types", "reps"):
            if key in kwargs and np.ndim(kwargs[key]) == 1:
                kwargs[key] = np.asarray(kwargs[key])[:0]
        if "starts" in kwargs:  # interleaved: empty half-open windows
            kwargs["stops"] = kwargs["starts"].copy()
        mismatches = compare_backends(
            kernel_name, kwargs, ("numpy", *COMPILED), label="empty"
        )
        assert mismatches == []

    def test_record_parity(self, ziff, small_lattice):
        """The (site, type, anchor) execution log matches entry-for-entry."""
        comp = ziff.compile(small_lattice)
        rng = np.random.default_rng(11)
        kwargs = fuzz_case(
            comp, "run_trials_sequential", rng, with_record=True
        )
        mismatches = compare_backends(
            "run_trials_sequential", kwargs, ("numpy", *COMPILED), label="record"
        )
        assert mismatches == []

    def test_invalid_dtype_degrades_to_reference(self, ziff, small_lattice):
        """A case the compiled kernel cannot take still runs — identically."""
        comp = ziff.compile(small_lattice)
        rng = np.random.default_rng(3)
        kwargs = fuzz_case(comp, "run_trials_sequential", rng)
        kwargs["counts"] = kwargs["counts"].astype(np.int32)  # not the ABI dtype
        mismatches = compare_backends(
            "run_trials_sequential", kwargs, ("numpy", *COMPILED), label="int32-counts"
        )
        assert mismatches == []


@requires_compiled
@pytest.mark.slow
class TestDifferentialMatrix:
    """models x lattice shapes x kernels x seeds — the full sweep."""

    @pytest.mark.parametrize("kernel_name", DISPATCH_KERNELS)
    def test_bit_identity_matrix(self, kernel_name):
        failures: list[str] = []
        for model, shapes in _model_matrix():
            for shape in shapes:
                comp = model.compile(Lattice(shape))
                for seed in range(4):
                    rng = np.random.default_rng(seed)
                    kwargs = fuzz_case(
                        comp,
                        kernel_name,
                        rng,
                        with_record=(kernel_name == "run_trials_sequential"),
                    )
                    failures += compare_backends(
                        kernel_name,
                        kwargs,
                        ("numpy", *COMPILED),
                        label=f"{model.name} {shape} seed {seed}",
                    )
        assert failures == []


# ----------------------------------------------------------------------
# the harness must catch a wrong twin
# ----------------------------------------------------------------------
class _MutantBackend(Backend):
    """A deliberately wrong tier: executes correctly, then corrupts."""

    name = "mutant-seeded"
    tier = -1

    def __init__(self, fault: str):
        self.fault = fault

    def kernels(self):
        from repro.core import kernels as ref

        fault = self.fault

        def bad_sequential(state, compiled, sites, types, counts=None, record=None):
            n = ref.run_trials_sequential(
                state, compiled, sites, types, counts=counts, record=record
            )
            if fault == "state" and len(state):
                state[0] ^= 1  # one flipped cell
                return n
            if fault == "count":
                return n + 1  # off-by-one return
            if fault == "counts" and counts is not None and counts.size:
                counts[0] += 1  # silent accounting drift
            return n

        return {"run_trials_sequential": bad_sequential}


@pytest.fixture
def mutant_registry():
    """Register mutants for one test; guarantee registry restoration."""
    from repro.backends import registry

    installed: list[str] = []

    def install(backend: Backend) -> Backend:
        register_backend(backend)
        installed.append(backend.name)
        return backend

    yield install
    for name in installed:
        registry._REGISTRY.pop(name, None)


class TestMutantsAreCaught:
    @pytest.mark.parametrize("fault", ["state", "count", "counts"])
    def test_seeded_mutant_twin_is_detected(
        self, ziff, small_lattice, mutant_registry, fault
    ):
        mutant_registry(_MutantBackend(fault))
        comp = ziff.compile(small_lattice)
        rng = np.random.default_rng(5)
        caught = False
        # a fault may need an executing trial to surface; several cases
        for kwargs in fuzz_cases(comp, "run_trials_sequential", rng, 5):
            if compare_backends(
                "run_trials_sequential", kwargs, ("numpy", "mutant-seeded")
            ):
                caught = True
                break
        assert caught, f"mutant fault {fault!r} survived the differential harness"


# ----------------------------------------------------------------------
# coverage map: what the backends must cover, locked by contract
# ----------------------------------------------------------------------
class TestCoverageMap:
    def test_dispatch_set_is_exactly_the_public_mutating_kernels(self):
        """Every public state-writing kernel is dispatchable — no bypass.

        ``CompiledReactionType.execute`` (repro.core.compiled) is the
        single-reaction primitive *beneath* the dispatch layer — the
        kernels call it, engines never do — so the assertion covers the
        engine-facing kernel module.
        """
        from repro.lint.contracts import contract_of, registered_kernels

        mutating = {
            fn.__name__
            for fn in registered_kernels(("repro.core.kernels",))
            if contract_of(fn).writes and not fn.__name__.startswith("_")
        }
        assert mutating == set(DISPATCH_KERNELS)

    def test_every_dispatch_kernel_has_a_registered_twin_per_compiled_module(self):
        from repro.lint.contracts import contract_of, registered_kernels

        for module in ("repro.backends.cnative", "repro.backends.numba_jit"):
            twins = {
                contract_of(fn).twin
                for fn in registered_kernels((module,))
                if contract_of(fn).twin
            }
            assert set(DISPATCH_KERNELS) <= twins, (
                f"{module} is missing twins for "
                f"{set(DISPATCH_KERNELS) - twins}"
            )

    def test_backend_kernel_sets_override_every_dispatch_kernel(self):
        from repro.core import kernels as ref

        for name in COMPILED:
            ks = get_backend(name).kernel_set()
            for kernel_name in DISPATCH_KERNELS:
                assert getattr(ks, kernel_name) is not getattr(ref, kernel_name)


# ----------------------------------------------------------------------
# engine-level bit-identity, RNG draw parity included
# ----------------------------------------------------------------------
def _engine_factories(small_lattice):
    from repro.ca.lpndca import LPNDCA
    from repro.ca.ndca import NDCA
    from repro.ca.pndca import PNDCA
    from repro.ca.typepart import TypePartitionedCA
    from repro.dmc.rsm import RSM
    from repro.partition import five_chunk_partition

    p5 = lambda: five_chunk_partition(small_lattice)  # noqa: E731
    return {
        "rsm": lambda m, metrics: RSM(m, small_lattice, seed=9, metrics=metrics),
        "ndca": lambda m, metrics: NDCA(m, small_lattice, seed=9, metrics=metrics),
        "pndca": lambda m, metrics: PNDCA(
            m, small_lattice, seed=9, partition=p5(), metrics=metrics
        ),
        "lpndca": lambda m, metrics: LPNDCA(
            m, small_lattice, seed=9, partition=p5(), L="chunk", metrics=metrics
        ),
        "typepart": lambda m, metrics: TypePartitionedCA(
            m, small_lattice, seed=9, metrics=metrics
        ),
    }


@requires_compiled
class TestEngineBitIdentity:
    @pytest.mark.parametrize(
        "engine", ["rsm", "ndca", "pndca", "lpndca", "typepart"]
    )
    @pytest.mark.parametrize("backend", COMPILED or ["numpy"])
    def test_run_is_bit_identical_with_draw_parity(
        self, ziff, small_lattice, engine, backend
    ):
        from repro.obs import MetricsCollector

        def run(backend_name):
            collector = MetricsCollector()
            # the backend is resolved at construction, so the engine must
            # be built inside the ambient block
            with use_backend(backend_name):
                sim = _engine_factories(small_lattice)[engine](ziff, collector)
                res = sim.run(until=3.0)
            return res, collector.snapshot()

        res_a, snap_a = run("numpy")
        res_b, snap_b = run(backend)
        assert np.array_equal(res_a.final_state.array, res_b.final_state.array)
        assert res_a.final_time == res_b.final_time
        assert res_a.n_trials == res_b.n_trials
        assert np.array_equal(res_a.executed_per_type, res_b.executed_per_type)
        draws_a = {k: v for k, v in snap_a.counters.items() if k.startswith("rng.")}
        draws_b = {k: v for k, v in snap_b.counters.items() if k.startswith("rng.")}
        assert draws_a == draws_b  # draw-for-draw RNG parity

    @pytest.mark.parametrize("backend", COMPILED or ["numpy"])
    def test_ensembles_bit_identical(self, ziff, small_lattice, backend):
        from repro.ensemble.ndca import EnsembleNDCA
        from repro.ensemble.pndca import EnsemblePNDCA
        from repro.ensemble.rsm import EnsembleRSM
        from repro.partition import five_chunk_partition

        factories = [
            lambda: EnsembleRSM(ziff, small_lattice, n_replicas=3, seed=4),
            lambda: EnsembleNDCA(ziff, small_lattice, n_replicas=3, seed=4),
            lambda: EnsemblePNDCA(
                ziff,
                small_lattice,
                n_replicas=3,
                seed=4,
                partition=five_chunk_partition(small_lattice),
            ),
        ]
        for mk in factories:
            with use_backend("numpy"):
                a = mk().run(until=3.0)
            with use_backend(backend):
                b = mk().run(until=3.0)
            assert np.array_equal(a.states, b.states)
            assert np.array_equal(a.n_trials, b.n_trials)
            assert np.array_equal(a.executed_per_type, b.executed_per_type)
            assert np.array_equal(a.final_times, b.final_times)

    def test_explicit_backend_argument_beats_ambient(self, ziff, small_lattice):
        from repro.dmc.rsm import RSM

        if not COMPILED:
            pytest.skip("no compiled backend available")
        with use_backend("numpy"):
            sim = RSM(ziff, small_lattice, seed=1, backend=COMPILED[0])
        assert sim.backend.name == COMPILED[0]
        assert sim.kernels.backend_name == COMPILED[0]


# ----------------------------------------------------------------------
# resilience x backends: checkpoints are backend-portable
# ----------------------------------------------------------------------
@requires_compiled
class TestCheckpointPortability:
    def test_fingerprint_is_backend_free(self, ziff, small_lattice):
        from repro.dmc.rsm import RSM
        from repro.resilience.checkpoint import engine_fingerprint

        fps = set()
        for name in ("numpy", *COMPILED):
            with use_backend(name):
                fps.add(engine_fingerprint(RSM(ziff, small_lattice, seed=2)))
        assert len(fps) == 1

    @pytest.mark.parametrize("backend", COMPILED or ["numpy"])
    def test_numpy_checkpoint_resumes_under_compiled_backend(
        self, ziff, small_lattice, tmp_path, backend
    ):
        """Write under numpy, resume under a compiled tier: no
        CheckpointMismatchError, and the completed run is bit-identical
        to an undisturbed single-backend baseline."""
        from repro.ca.pndca import PNDCA
        from repro.partition import five_chunk_partition
        from repro.resilience.checkpoint import (
            Checkpointer,
            CheckpointPolicy,
            checkpoint_paths,
        )

        mk = lambda seed: PNDCA(  # noqa: E731
            ziff,
            small_lattice,
            seed=seed,
            partition=five_chunk_partition(small_lattice),
        )
        with use_backend("numpy"):
            baseline = mk(42).run(until=4.0)
            ck = Checkpointer(tmp_path, CheckpointPolicy(every_steps=1), tag="xbk")
            mk(42).run(until=4.0, checkpoint=ck)
        paths = checkpoint_paths(tmp_path)
        assert len(paths) >= 2
        mid = paths[len(paths) // 2]
        with use_backend(backend):
            resumed = mk(999).resume(mid).run(until=4.0)
        assert np.array_equal(
            baseline.final_state.array, resumed.final_state.array
        )
        assert baseline.final_time == resumed.final_time
        assert baseline.n_trials == resumed.n_trials
        assert np.array_equal(baseline.executed_per_type, resumed.executed_per_type)


# ----------------------------------------------------------------------
# per-backend BENCH records
# ----------------------------------------------------------------------
class TestBenchRecords:
    def test_default_backend_keeps_plain_record_name(self):
        from repro.obs.bench import run_engine_bench

        record = run_engine_bench("pndca", side=10, until=1.0)
        assert record["name"] == "pndca"
        assert record["extra"]["backend"] == "numpy"

    @requires_compiled
    def test_compiled_backend_gets_suffixed_record(self):
        from repro.obs.bench import run_engine_bench

        record = run_engine_bench("pndca", side=10, until=1.0, backend=COMPILED[0])
        assert record["name"] == f"pndca-{COMPILED[0]}"
        assert record["extra"]["backend"] == COMPILED[0]
        assert record["schema"] == "repro.bench/1"

    @requires_compiled
    def test_backend_records_are_bit_identical_in_physics(self):
        """Same seed, different backend: identical trials, different name."""
        from repro.obs.bench import run_engine_bench

        a = run_engine_bench("pndca", side=10, until=1.0, backend="numpy")
        b = run_engine_bench("pndca", side=10, until=1.0, backend=COMPILED[0])
        assert a["timings"]["trials"] == b["timings"]["trials"]


# ----------------------------------------------------------------------
# the headline speedup gate (slow; exercised by the CI bench job)
# ----------------------------------------------------------------------
@requires_compiled
@pytest.mark.slow
class TestSpeedup:
    def test_sequential_hot_kernel_3x_at_256(self, ziff):
        """The compiled tier must beat the reference python trial loop
        >= 3x on the 256 x 256 reference workload (it measures ~20x;
        3 is the regression floor, robust to CI noise)."""
        from repro.core.rng import draw_types, make_rng

        lat = Lattice((256, 256))
        comp = ziff.compile(lat)
        rng = make_rng(0)
        state0 = rng.integers(0, 3, lat.n_sites).astype(np.uint8)
        sites = rng.integers(0, lat.n_sites, lat.n_sites).astype(np.intp)
        types = draw_types(make_rng(1), comp.type_cum, lat.n_sites)

        def best_of(fn, reps=3):
            best = float("inf")
            for _ in range(reps):
                st = state0.copy()
                t0 = time.perf_counter()
                fn(st, comp, sites, types)
                best = min(best, time.perf_counter() - t0)
            return best

        compiled = resolve_backend(COMPILED[0]).kernel_set()
        reference = resolve_backend("numpy").kernel_set()
        best_of(compiled.run_trials_sequential, reps=1)  # warm the library
        t_ref = best_of(reference.run_trials_sequential)
        t_jit = best_of(compiled.run_trials_sequential)
        assert t_ref / t_jit >= 3.0, (
            f"compiled sequential kernel only {t_ref / t_jit:.1f}x faster"
        )
