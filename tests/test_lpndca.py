"""Unit tests for L-PNDCA."""

import numpy as np
import pytest

from repro.ca import LPNDCA
from repro.core import Lattice
from repro.dmc import RSM
from repro.partition import Partition, five_chunk_partition


@pytest.fixture
def p5(ziff, small_lattice):
    p = five_chunk_partition(small_lattice)
    p.validate_conflict_free(ziff)
    return p


class TestConstruction:
    def test_L_validation(self, ziff, small_lattice, p5):
        with pytest.raises(ValueError):
            LPNDCA(ziff, small_lattice, partition=p5, L=0)
        with pytest.raises(ValueError):
            LPNDCA(ziff, small_lattice, partition=p5, L="half")

    def test_chunk_selection_validation(self, ziff, small_lattice, p5):
        with pytest.raises(ValueError, match="chunk selection"):
            LPNDCA(ziff, small_lattice, partition=p5, chunk_selection="bogus")

    def test_requires_conflict_free_by_default(self, ziff, small_lattice):
        with pytest.raises(ValueError, match="non-overlap"):
            LPNDCA(
                ziff, small_lattice, partition=Partition.single_chunk(small_lattice)
            )

    def test_rsm_equivalent_fast_path_detected(self, ziff, small_lattice, p5):
        sim = LPNDCA(ziff, small_lattice, partition=p5, L=1)
        assert sim._rsm_equivalent
        sim2 = LPNDCA(ziff, small_lattice, partition=p5, L=2)
        assert not sim2._rsm_equivalent

    def test_label(self, ziff, small_lattice, p5):
        sim = LPNDCA(ziff, small_lattice, partition=p5, L=7)
        assert "L=7" in sim.algorithm


class TestTrialBudget:
    @pytest.mark.parametrize("L", [1, 7, 50, "chunk"])
    def test_n_trials_per_step_is_N(self, ziff, small_lattice, p5, L):
        sim = LPNDCA(ziff, small_lattice, partition=p5, L=L, seed=0)
        sim._step_block(until=np.inf)
        assert sim.n_trials == small_lattice.n_sites

    def test_random_order_visits_every_chunk_once(self, ziff, small_lattice, p5):
        sim = LPNDCA(
            ziff, small_lattice, partition=p5, L="chunk",
            chunk_selection="random-order", seed=0,
        )
        sim._step_block(until=np.inf)
        assert sim.n_trials == small_lattice.n_sites

    def test_reproducible(self, ziff, small_lattice, p5):
        a = LPNDCA(ziff, small_lattice, partition=p5, L=10, seed=3).run(until=4.0)
        b = LPNDCA(ziff, small_lattice, partition=p5, L=10, seed=3).run(until=4.0)
        assert np.array_equal(a.final_state.array, b.final_state.array)


class TestRSMLimits:
    """m=1/L=N and m=N/L=1 reduce the algorithm exactly to RSM (Fig. 8).

    The reductions are proved *exactly*: with deterministic time the
    relevant configurations consume the random stream identically (per
    step: N uniform sites, N rate-weighted types), so same-seed runs
    are bit-identical — far stronger than a statistical comparison.
    """

    def _manual_rsm_trials(self, ziff, lat, seed, n_steps):
        """Replay: per step, N uniform trials through the raw kernel."""
        from repro.core.kernels import run_trials_sequential
        from repro.core.rng import draw_types
        from repro.core import Configuration

        comp = ziff.compile(lat)
        rng = np.random.default_rng(seed)
        state = Configuration.empty(lat, ziff.species).array.copy()
        n = lat.n_sites
        for _ in range(n_steps):
            sites = rng.integers(0, n, size=n).astype(np.intp)
            types = draw_types(rng, comp.type_cum, n)
            run_trials_sequential(state, comp, sites, types)
        return state

    def _run_steps(self, sim, n_steps):
        sim.run(until=np.inf, max_steps=n_steps)
        return sim.state.array

    def test_fast_path_is_exactly_rsm_trials(self, ziff, small_lattice, p5):
        manual = self._manual_rsm_trials(ziff, small_lattice, 7, 12)
        sim = LPNDCA(
            ziff, small_lattice, seed=7, partition=p5, L=1,
            time_mode="deterministic",
        )
        assert np.array_equal(self._run_steps(sim, 12), manual)

    def test_single_chunk_limit_exact(self, ziff, small_lattice):
        # m=1, L=N: the chunk IS the lattice, so in-chunk uniform site
        # draws are lattice-uniform draws -> the same stream again
        manual = self._manual_rsm_trials(ziff, small_lattice, 9, 12)
        sim = LPNDCA(
            ziff, small_lattice, seed=9,
            partition=Partition.single_chunk(small_lattice),
            L=small_lattice.n_sites, require_conflict_free=False,
            time_mode="deterministic",
        )
        assert np.array_equal(self._run_steps(sim, 12), manual)

    def test_singleton_limit_exact(self, ziff, small_lattice):
        # m=N, L=1 hits the same fast path (uniform chunk = uniform site)
        p = Partition.singletons(small_lattice)
        p.validate_conflict_free(ziff)
        manual = self._manual_rsm_trials(ziff, small_lattice, 13, 12)
        sim = LPNDCA(
            ziff, small_lattice, seed=13, partition=p, L=1,
            time_mode="deterministic",
        )
        assert sim._rsm_equivalent
        assert np.array_equal(self._run_steps(sim, 12), manual)

    def test_statistical_agreement_with_rsm(self, ziff):
        # and the physical statement: the limit kinetics match RSM's
        lat = Lattice((10, 10))
        seeds = range(10)
        rsm = np.mean(
            [
                RSM(ziff, lat, seed=s).run(until=4.0).final_state.coverage("O")
                for s in seeds
            ]
        )
        p = five_chunk_partition(lat)
        p.validate_conflict_free(ziff)
        lim = np.mean(
            [
                LPNDCA(ziff, lat, seed=s + 10, partition=p, L=1)
                .run(until=4.0)
                .final_state.coverage("O")
                for s in seeds
            ]
        )
        assert lim == pytest.approx(rsm, abs=0.12)


class TestDuplicateHandling:
    def test_with_replacement_duplicates_executed_correctly(self, ziff, small_lattice, p5):
        # tiny chunks + large L force many repeated sites; the batched
        # duplicate path must equal a sequential replay (covered at the
        # kernel level) and must never crash here
        sim = LPNDCA(ziff, small_lattice, partition=p5, L=50, seed=7)
        res = sim.run(until=3.0)
        assert res.n_executed > 0
        counts = res.final_state.counts()
        assert counts.sum() == small_lattice.n_sites
