"""Tests for repro.lint.kernel_lint — the scatter-aliasing prover.

Three layers:

* unit tests of the ``@kernel`` contract machinery and the dataflow IR
  (uniqueness provenance, index classification, shape/dtype inference),
* adversarial kernels triggering each SR04x/SR05x code, plus seeded
  mutants of shipped kernels (``np.add.at``-style dedup replaced by a
  bare ``+=`` fancy scatter) that the linter must catch,
* differential tests pitting the static aliasing verdict against a
  brute-force runtime enumeration of write-index collisions
  (:func:`repro.lint.kernel_lint.runtime_write_collisions`) on the
  ZGB, diffusion, Ising and type-partitioned configurations.
"""

import inspect

import numpy as np
import pytest

from repro.core import Lattice
from repro.core.kernels import (
    _execute_masked,
    _occurrence_index,
    _write_flat,
    run_trials_batch,
    run_trials_batch_with_duplicates,
    run_trials_stacked,
)
from repro.lint import (
    KERNEL_MODULES,
    KernelContract,
    analyze_kernel,
    build_ir,
    check_twins,
    contract_of,
    kernel,
    lint_kernels,
    registered_kernels,
    runtime_write_collisions,
)
from repro.models import diffusion_model_1d, ising_model_2d, zgb_model
from repro.partition import (
    checkerboard,
    five_chunk_partition,
    modular_tiling,
    split_by_orientation,
)


# ----------------------------------------------------------------------
# contract machinery
# ----------------------------------------------------------------------
class TestContracts:
    def test_decorator_registers_and_preserves(self):
        @kernel(reads=("x",), writes=("out",))
        def k(out, x):
            out[:] = x

        assert k.__name__ == "k"
        c = contract_of(k)
        assert isinstance(c, KernelContract)
        assert c.writes == ("out",) and c.reads == ("x",)
        assert not c.pure
        assert "out" in c.allowed_writes()

    def test_pure_with_writes_rejected(self):
        with pytest.raises(ValueError, match="pure"):
            kernel(pure=True, writes=("x",))(lambda x: None)

    def test_contract_of_undecorated_is_none(self):
        assert contract_of(lambda: None) is None

    def test_caches_count_as_allowed_writes(self):
        @kernel(reads=(), caches=("compiled",))
        def k(compiled):
            compiled._tables = {}

        c = contract_of(k)
        assert "compiled" in c.allowed_writes()
        assert analyze_kernel(k).ok(strict=True)

    def test_registered_kernels_cover_all_modules(self):
        kernels = registered_kernels(KERNEL_MODULES)
        names = {f.__name__ for f in kernels}
        assert {
            "run_trials_sequential",
            "run_trials_batch",
            "run_trials_stacked",
            "run_trials_interleaved",
            "_execute_masked",
            "_occurrence_index",
            "_stacked_counts",
            "_write_flat",
            "execute",
            "_step_block",
            "_visit_chunk",
        } <= names
        # every module contributes at least one kernel
        mods = {f.__module__ for f in kernels}
        assert set(KERNEL_MODULES) <= mods


# ----------------------------------------------------------------------
# dataflow IR: uniqueness provenance and classification
# ----------------------------------------------------------------------
class TestIR:
    def test_arange_scatter_is_unique(self):
        @kernel(reads=(), writes=("out",))
        def k(out):
            idx = np.arange(out.shape[0])
            out[idx] += 1

        ir = build_ir(k)
        assert len(ir.scatters) == 1
        assert ir.scatters[0].index_unique
        assert analyze_kernel(k).ok(strict=True)

    def test_param_index_not_unique_without_disjoint(self):
        @kernel(reads=("idx",), writes=("out",), dtypes={"idx": "intp"})
        def k(out, idx):
            out[idx] += 1

        ir = build_ir(k)
        assert len(ir.scatters) == 1
        assert not ir.scatters[0].index_unique

    def test_disjoint_param_is_unique(self):
        @kernel(
            reads=("idx",), writes=("out",),
            disjoint=("idx",), dtypes={"idx": "intp"},
        )
        def k(out, idx):
            out[idx] += 1

        assert build_ir(k).scatters[0].index_unique
        assert analyze_kernel(k).ok(strict=True)

    def test_bool_mask_subset_preserves_uniqueness(self):
        @kernel(
            reads=("idx", "keep"), writes=("out",),
            disjoint=("idx",), dtypes={"idx": "intp", "keep": "bool"},
        )
        def k(out, idx, keep):
            out[idx[keep]] += 1

        assert build_ir(k).scatters[0].index_unique

    def test_injective_gather_at_unique_index_is_unique(self):
        # the _execute_masked proof shape: m injective, hits unique
        @kernel(
            reads=("hits",), writes=("state",),
            disjoint=("hits",), injective=("m",),
            dtypes={"hits": "intp", "m": "intp"},
        )
        def k(state, m, hits):
            state[m[hits]] = 3

        assert build_ir(k).scatters[0].index_unique

    def test_arithmetic_degrades_uniqueness(self):
        @kernel(
            reads=("idx",), writes=("out",),
            disjoint=("idx",), dtypes={"idx": "intp"},
        )
        def k(out, idx):
            out[idx * 2] += 1  # multiplication could collide after wrap

        assert not build_ir(k).scatters[0].index_unique

    def test_shift_preserves_uniqueness(self):
        @kernel(
            reads=("idx",), writes=("out",),
            disjoint=("idx",), dtypes={"idx": "intp"},
        )
        def k(out, idx):
            out[idx + 1] += 1  # a constant shift cannot create duplicates

        assert build_ir(k).scatters[0].index_unique

    def test_occurrence_round_mask_dedups(self):
        @kernel(reads=("sites",), writes=("out",), dtypes={"sites": "intp"})
        def k(out, sites):
            occ = _occurrence_index(sites)
            for r in range(int(occ.max()) + 1):
                pick = occ == r
                out[sites[pick]] += 1

        ir = build_ir(k)
        assert len(ir.scatters) == 1
        assert ir.scatters[0].index_unique

    def test_basic_and_mask_stores_are_not_scatters(self):
        @kernel(reads=("mask",), writes=("out",), dtypes={"mask": "bool"})
        def k(out, mask):
            out[0] = 1
            out[1:5] = 2
            out[mask] = 3

        assert build_ir(k).scatters == []
        assert analyze_kernel(k).ok(strict=True)

    def test_ufunc_at_is_safe(self):
        @kernel(reads=("idx",), writes=("out",), dtypes={"idx": "intp"})
        def k(out, idx):
            np.add.at(out, idx, 1)

        ir = build_ir(k)
        assert ir.scatters == []
        assert any("out" in m.roots for m in ir.mutations)
        assert analyze_kernel(k).ok(strict=True)


# ----------------------------------------------------------------------
# adversarial kernels: one per diagnostic code
# ----------------------------------------------------------------------
class TestAdversarialKernels:
    def test_sr040_augmented_fancy_scatter(self):
        @kernel(reads=("idx",), writes=("counts",), dtypes={"idx": "intp"})
        def bad(counts, idx):
            counts[idx] += 1

        report = analyze_kernel(bad)
        assert report.by_code("SR040")
        assert not report.ok()

    def test_sr041_plain_fancy_scatter_with_array_rhs(self):
        @kernel(
            reads=("idx", "vals"), writes=("out",),
            dtypes={"idx": "intp"},
        )
        def bad(out, idx, vals):
            out[idx] = vals

        assert analyze_kernel(bad).by_code("SR041")

    def test_sr041_scalar_rhs_exempt(self):
        @kernel(reads=("idx",), writes=("out",), dtypes={"idx": "intp"})
        def ok(out, idx):
            out[idx] = 7  # last-write-wins with an identical value

        assert analyze_kernel(ok).ok(strict=True)

    def test_sr042_provable_broadcast_mismatch(self):
        @kernel(
            pure=True, reads=("a", "b"),
            shapes={"a": (3, 4), "b": (5, 4)},
        )
        def bad(a, b):
            return a + b

        assert analyze_kernel(bad).by_code("SR042")

    def test_sr042_symbolic_dims_never_fire(self):
        @kernel(
            pure=True, reads=("a", "b"),
            shapes={"a": ("R", 4), "b": ("Q", 4)},
        )
        def ok(a, b):
            return a + b

        assert analyze_kernel(ok).ok(strict=True)

    def test_sr043_implicit_downcast(self):
        @kernel(
            reads=("x",), writes=("counts",),
            dtypes={"counts": "int64", "x": "float64"},
        )
        def bad(counts, x):
            counts[0] = x[0] * 0.5

        assert analyze_kernel(bad).by_code("SR043")

    def test_sr043_explicit_astype_exempt(self):
        @kernel(
            reads=("x",), writes=("counts",),
            dtypes={"counts": "int64", "x": "float64"},
        )
        def ok(counts, x):
            counts[:] = x.astype(np.int64)

        assert analyze_kernel(ok).ok(strict=True)

    def test_sr050_pure_kernel_mutates(self):
        @kernel(pure=True, reads=("x",))
        def bad(x):
            x.fill(0)

        report = analyze_kernel(bad)
        diags = report.by_code("SR050")
        assert diags and "pure" in diags[0].message

    def test_sr050_undeclared_write(self):
        @kernel(reads=("x",), writes=("out",))
        def bad(out, x, scratch):
            out[:] = x
            scratch[:] = 0  # not declared

        assert analyze_kernel(bad).by_code("SR050")

    def test_sr050_prefix_rule_covers_attributes(self):
        @kernel(reads=(), writes=("compiled",))
        def ok(compiled):
            compiled._seq_tables = {}

        assert analyze_kernel(ok).ok(strict=True)

    def test_sr050_local_copies_are_free(self):
        @kernel(pure=True, reads=("starts",))
        def ok(starts):
            ptr = np.asarray(starts).copy()
            ptr += 1  # mutates the local copy, not the argument
            return ptr

        assert analyze_kernel(ok).ok(strict=True)

    def test_sr051_missing_twin(self):
        @kernel(reads=(), writes=("out",), twin="no_such_kernel")
        def solo(out):
            out[:] = 0

        report = check_twins([solo])
        assert report.by_code("SR051")

    def test_sr051_purity_drift(self):
        @kernel(pure=True, reads=("x",))
        def seq_k(x):
            return x

        @kernel(reads=("x",), writes=("x",), twin="seq_k")
        def ens_k(x):
            x[:] = 0

        assert check_twins([seq_k, ens_k]).by_code("SR051")

    def test_sr051_write_set_drift(self):
        @kernel(reads=("sites",), writes=("state",))
        def seq_w(state, sites):
            state[0] = 1

        @kernel(
            reads=("sites",), writes=("states", "counts"),
            twin="seq_w", rename={"states": "state"},
        )
        def ens_w(states, sites, counts):
            states[0] = 1
            counts[0] += 1

        # counts is a shared-name drift candidate only if seq_w has it;
        # it does not, so the drift is exactly on the shared params —
        # here the sets agree and a note is produced
        report = check_twins([seq_w, ens_w])
        assert not report.by_code("SR051")
        assert any("twin contracts agree" in n for n in report.notes)

        @kernel(reads=("sites",), writes=(), twin="seq_w",
                rename={"states": "state"})
        def ens_drift(states, sites, state=None):
            return None

        # ens_drift shares the (renamed) "state" param but declares no
        # write on it while the twin does -> drift
        assert check_twins([seq_w, ens_drift]).by_code("SR051")

    def test_pragma_justification_downgrades(self):
        @kernel(reads=("idx", "vals"), writes=("out",), dtypes={"idx": "intp"})
        def justified(out, idx, vals):
            # lint: justified(SR041): disjointness proven out of band
            out[idx] = vals

        report = analyze_kernel(justified)
        assert report.ok(strict=True)
        assert any("justified" in n for n in report.notes)

    def test_contract_justification_downgrades(self):
        @kernel(
            reads=("idx", "vals"), writes=("out",),
            dtypes={"idx": "intp"},
            justify={"SR041": "caller guarantees disjoint idx"},
        )
        def justified(out, idx, vals):
            out[idx] = vals

        assert analyze_kernel(justified).ok(strict=True)

    def test_justification_is_per_code(self):
        @kernel(
            reads=("idx", "vals"), writes=("out",),
            dtypes={"idx": "intp"},
            justify={"SR041": "does not cover SR040"},
        )
        def still_bad(out, idx, vals):
            out[idx] += vals

        assert analyze_kernel(still_bad).by_code("SR040")


# ----------------------------------------------------------------------
# shipped kernels: strict-clean, and seeded mutants caught
# ----------------------------------------------------------------------
class TestShippedKernels:
    def test_all_shipped_kernels_strict_clean(self):
        report = lint_kernels()
        assert report.ok(strict=True), report.render()

    def test_twin_notes_present(self):
        report = lint_kernels()
        agree = [n for n in report.notes if "twin contracts agree" in n]
        assert len(agree) >= 2  # stacked/batch and interleaved/sequential

    def test_seeded_mutant_add_at_to_augmented(self):
        """The acceptance-criterion mutant: np.add.at -> bare `+=`."""

        @kernel(reads=("idx",), writes=("counts",), dtypes={"idx": "intp"})
        def good(counts, idx):
            np.add.at(counts, idx, 1)

        assert analyze_kernel(good).ok(strict=True)
        mutant = inspect.getsource(good).replace(
            "np.add.at(counts, idx, 1)", "counts[idx] += 1"
        )
        report = analyze_kernel(good, source=mutant)
        assert report.by_code("SR040"), report.render()

    def test_seeded_mutant_write_flat(self):
        """Mutating _write_flat's justified `=` into `+=` fires SR040.

        The shipped contract justifies SR041 only; an augmented scatter
        through the same possibly-repeated index is a new bug class and
        must not inherit the justification.
        """
        src = inspect.getsource(_write_flat)
        assert "] = ctgt" in src
        mutant = src.replace("] = ctgt", "] += ctgt")
        report = analyze_kernel(_write_flat, source=mutant)
        assert report.by_code("SR040"), report.render()

    def test_seeded_mutant_execute_masked_loses_dedup(self):
        """Dropping the bool-mask dedup of _execute_masked fires SR041.

        Shipped code scatters through ``m[hits]`` with ``hits`` a subset
        of the ``disjoint`` ``sel``; replacing ``hits`` by a raw
        concatenation destroys the uniqueness chain.
        """
        src = inspect.getsource(_execute_masked)
        assert "hits = sel[mask]" in src
        mutant = src.replace(
            "hits = sel[mask]", "hits = np.concatenate((sel, sel))"
        )
        report = analyze_kernel(_execute_masked, source=mutant)
        assert report.by_code("SR041"), report.render()

    def test_occurrence_index_is_pure_and_clean(self):
        report = analyze_kernel(_occurrence_index)
        assert report.ok(strict=True), report.render()
        ir = build_ir(_occurrence_index)
        # occ[order] = occ_sorted: order = argsort(...) is injective
        assert all(s.index_unique for s in ir.scatters)


# ----------------------------------------------------------------------
# differential: static verdict vs. runtime collision enumeration
# ----------------------------------------------------------------------
def _collision_free_chunks(model, lattice, partition, seed=0):
    comp = model.compile(lattice)
    rng = np.random.default_rng(seed)
    total = 0
    for chunk in partition.chunks:
        types = rng.integers(0, comp.n_types, size=chunk.size)
        collisions = runtime_write_collisions(comp, chunk, types)
        assert collisions == [], (
            f"{model.name}: chunk batch has write collisions {collisions[:3]}"
        )
        total += chunk.size
    assert total == lattice.n_sites


class TestDifferential:
    """Static aliasing verdict == brute-force runtime index enumeration."""

    def test_zgb_five_chunk_batches_collision_free(self):
        lat = Lattice((10, 10))
        _collision_free_chunks(zgb_model(0.5), lat, five_chunk_partition(lat))

    def test_diffusion_modular_batches_collision_free(self):
        lat = Lattice((12,))
        part = modular_tiling(lat, 3, (1,))
        _collision_free_chunks(diffusion_model_1d(), lat, part)

    def test_ising_five_chunk_batches_collision_free(self):
        lat = Lattice((10, 10))
        _collision_free_chunks(
            ising_model_2d(beta=0.4), lat, five_chunk_partition(lat)
        )

    def test_typepart_single_type_checkerboard_collision_free(self):
        # type-partitioned CA precondition: per single type, the
        # checkerboard chunks are conflict-free — so single-type
        # batches cannot collide
        model = zgb_model(0.5)
        lat = Lattice((10, 10))
        comp = model.compile(lat)
        part = checkerboard(lat)
        split = split_by_orientation(model)
        for subset in split.subsets:
            for t in subset.type_indices:
                for chunk in part.chunks:
                    types = np.full(chunk.size, t, dtype=np.intp)
                    assert runtime_write_collisions(comp, chunk, types) == []

    def test_adversarial_duplicate_sites_collide(self):
        model = zgb_model(0.5)
        lat = Lattice((10, 10))
        comp = model.compile(lat)
        sites = np.array([0, 0], dtype=np.intp)
        types = np.zeros(2, dtype=np.intp)
        assert runtime_write_collisions(comp, sites, types)

    def test_adversarial_adjacent_pair_reactions_collide(self):
        model = zgb_model(0.5)
        lat = Lattice((10, 10))
        comp = model.compile(lat)
        # find a pair (two-change) reaction type and anchor it at two
        # sites one pair-axis step apart: footprints share a cell
        t = next(
            i for i, rt in enumerate(model.reaction_types)
            if len(rt.changes) == 2
        )
        off = next(
            c.offset for c in model.reaction_types[t].changes
            if any(c.offset)
        )
        s0 = 0
        s1 = int(comp.types[t].maps[1][s0]) if any(off) else 1
        sites = np.array([s0, s1], dtype=np.intp)
        types = np.full(2, t, dtype=np.intp)
        assert runtime_write_collisions(comp, sites, types)

    def test_duplicate_stream_matches_dedup_kernel(self):
        """Runtime collisions exist <-> the dedup kernel must be used.

        The adversarial stream has collisions, the naive batch kernel
        would lose updates (the SR040 failure mode), and the shipped
        occurrence-round kernel executes it with strict sequential
        semantics.
        """
        model = zgb_model(0.5)
        lat = Lattice((10, 10))
        comp = model.compile(lat)
        rng = np.random.default_rng(7)
        # repeats of conflict-free chunk sites: distinct sites cannot
        # conflict (the kernel's precondition), duplicates can
        chunk = five_chunk_partition(lat).chunks[0]
        sites = rng.choice(chunk, size=64, replace=True).astype(np.intp)
        types = rng.integers(0, comp.n_types, size=64).astype(np.intp)
        assert runtime_write_collisions(comp, sites, types)

        from repro.core.kernels import run_trials_sequential

        state_seq = np.zeros(lat.n_sites, dtype=np.uint8)
        state_dup = state_seq.copy()
        run_trials_sequential(state_seq, comp, sites, types)
        run_trials_batch_with_duplicates(state_dup, comp, sites, types)
        np.testing.assert_array_equal(state_seq, state_dup)

    def test_static_verdicts_match_runtime_model(self):
        # the kernels the engine trusts for simultaneous batches are
        # exactly the statically-clean ones
        for fn in (run_trials_batch, run_trials_stacked, _execute_masked):
            assert analyze_kernel(fn).ok(strict=True), fn.__name__
