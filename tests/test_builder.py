"""Tests for the fluent model builder."""

import numpy as np
import pytest

from repro.core import Lattice, ModelBuilder
from repro.dmc import RSM
from repro.models import ziff_model


class TestBuilderBasics:
    def test_adsorption_desorption(self):
        m = (
            ModelBuilder("ads-des", species=("*", "A"))
            .adsorption("ads", "A", rate=2.0)
            .desorption("des", "A", rate=1.0)
            .build()
        )
        assert m.n_types == 2
        assert m.total_rate == 3.0

    def test_transformation(self):
        m = (
            ModelBuilder("flip", species=("*", "A", "B"))
            .transformation("a2b", "A", "B", rate=1.0)
            .build()
        )
        rt = m.reaction_types[0]
        assert rt.source_pattern == ("A",)
        assert rt.target_pattern == ("B",)

    def test_dissociative_adsorption_two_orientations(self):
        m = (
            ModelBuilder("o2", species=("*", "O"))
            .dissociative_adsorption("O2", "O", rate=0.5)
            .build()
        )
        assert m.n_types == 2
        assert {rt.name for rt in m.reaction_types} == {"O2(0)", "O2(1)"}

    def test_pair_reaction_four_orientations(self):
        m = (
            ModelBuilder("rx", species=("*", "A", "B"))
            .pair_reaction("A+B", "A", "B", rate=3.0)
            .build()
        )
        assert m.n_types == 4
        assert all(rt.target_pattern == ("*", "*") for rt in m.reaction_types)

    def test_pair_reaction_custom_products(self):
        m = (
            ModelBuilder("rx", species=("*", "A", "B", "C"))
            .pair_reaction("mk", "A", "B", rate=1.0, product_a="C", product_b="*")
            .build()
        )
        assert m.reaction_types[0].target_pattern == ("C", "*")

    def test_hop(self):
        m = (
            ModelBuilder("diff", species=("*", "A"))
            .hop("hop", "A", rate=1.0)
            .build()
        )
        assert m.n_types == 4
        assert m.groups() == ["hop"]


class TestBuilderValidation:
    def test_unknown_species(self):
        with pytest.raises(ValueError, match="not in the domain"):
            ModelBuilder("m", species=("*",)).adsorption("a", "X", 1.0)

    def test_empty_build(self):
        with pytest.raises(ValueError, match="no reaction types"):
            ModelBuilder("m", species=("*", "A")).build()

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            ModelBuilder("m", species=("*",), ndim=3)


class TestBuilderEquivalence:
    def test_builder_ziff_equals_handwritten(self):
        built = (
            ModelBuilder("ziff", species=("*", "CO", "O"))
            .pair_reaction("CO+O", "CO", "O", rate=1.0)
            .dissociative_adsorption("O2_ads", "O", rate=1.0)
            .adsorption("CO_ads", "CO", rate=1.0)
            .build()
        )
        hand = ziff_model()
        assert built.n_types == hand.n_types
        for a, b in zip(built.reaction_types, hand.reaction_types):
            assert a.changes == b.changes, (a.name, b.name)

    def test_built_model_simulates(self):
        m = (
            ModelBuilder("ads", species=("*", "A"))
            .adsorption("ads", "A", rate=1.0)
            .build()
        )
        res = RSM(m, Lattice((10, 10)), seed=0).run(until=2.0)
        assert res.final_state.coverage("A") == pytest.approx(
            1 - np.exp(-2.0), abs=0.1
        )


class TestBuilder1D:
    def test_1d_hop_two_directions(self):
        m = (
            ModelBuilder("d1", species=("*", "A"), ndim=1)
            .hop("hop", "A", rate=1.0)
            .build()
        )
        assert m.n_types == 2
        offs = {rt.changes[1].offset for rt in m.reaction_types}
        assert offs == {(1,), (-1,)}

    def test_1d_single_site(self):
        m = (
            ModelBuilder("d1", species=("*", "A"), ndim=1)
            .adsorption("a", "A", 1.0)
            .build()
        )
        assert m.reaction_types[0].changes[0].offset == (0,)
