"""Unit tests for the observer/result machinery in repro.dmc.base."""

import numpy as np
import pytest

from repro.core import Lattice
from repro.dmc import RSM, CoverageObserver, SnapshotObserver


class TestCoverageObserver:
    def test_samples_on_grid(self, ziff):
        sim = RSM(
            ziff, Lattice((10, 10)), seed=0,
            observers=[CoverageObserver(0.5)],
        )
        res = sim.run(until=3.0)
        assert res.times.tolist() == pytest.approx(
            [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
        )

    def test_species_subset(self, ziff):
        sim = RSM(
            ziff, Lattice((10, 10)), seed=0,
            observers=[CoverageObserver(1.0, species=("CO",))],
        )
        res = sim.run(until=2.0)
        assert set(res.coverage) == {"CO"}

    def test_initial_sample_is_empty_lattice(self, ziff):
        sim = RSM(
            ziff, Lattice((10, 10)), seed=0, observers=[CoverageObserver(1.0)]
        )
        res = sim.run(until=1.0)
        assert res.coverage["*"][0] == 1.0

    def test_coverages_sum_to_one(self, ziff):
        sim = RSM(
            ziff, Lattice((10, 10)), seed=3, observers=[CoverageObserver(0.5)]
        )
        res = sim.run(until=5.0)
        total = sum(res.coverage[sp] for sp in res.coverage)
        assert np.allclose(total, 1.0)

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            CoverageObserver(0.0)


class TestSnapshotObserver:
    def test_snapshots_collected(self, ziff):
        obs = SnapshotObserver(1.0)
        sim = RSM(ziff, Lattice((6, 6)), seed=0, observers=[obs])
        res = sim.run(until=2.0)
        snaps = res.extra["snapshots"]
        assert snaps.shape == (3, 36)
        # first snapshot is the empty lattice
        assert not snaps[0].any()


class TestSimulationResult:
    def test_mc_steps(self, ziff):
        res = RSM(ziff, Lattice((10, 10)), seed=0).run(until=2.0)
        assert res.mc_steps == pytest.approx(res.n_trials / 100)

    def test_acceptance_in_unit_interval(self, ziff):
        res = RSM(ziff, Lattice((10, 10)), seed=0).run(until=2.0)
        assert 0.0 < res.acceptance < 1.0

    def test_summary_mentions_algorithm(self, ziff):
        res = RSM(ziff, Lattice((10, 10)), seed=0).run(until=1.0)
        assert "RSM" in res.summary()

    def test_executed_counts_match_total(self, ziff):
        res = RSM(ziff, Lattice((10, 10)), seed=0).run(until=2.0)
        assert res.executed_per_type.sum() == res.n_executed


class TestRunGuards:
    def test_until_must_advance(self, ziff):
        sim = RSM(ziff, Lattice((6, 6)), seed=0)
        sim.run(until=1.0)
        with pytest.raises(ValueError):
            sim.run(until=0.5)

    def test_invalid_time_mode(self, ziff):
        with pytest.raises(ValueError, match="time mode"):
            RSM(ziff, Lattice((6, 6)), time_mode="warped")

    def test_initial_lattice_mismatch(self, ziff):
        from repro.core import Configuration

        other = Configuration.empty(Lattice((4, 4)), ziff.species)
        with pytest.raises(ValueError, match="different lattice"):
            RSM(ziff, Lattice((6, 6)), initial=other)

    def test_deterministic_time_mode(self, ziff):
        lat = Lattice((10, 10))
        sim = RSM(ziff, lat, seed=0, time_mode="deterministic")
        res = sim.run(until=1.0)
        # deterministic increments: exactly until (trials * 1/NK ~ until)
        assert res.final_time == pytest.approx(1.0)
        expected_trials = round(lat.n_sites * ziff.total_rate * 1.0)
        assert abs(res.n_trials - expected_trials) <= 1
