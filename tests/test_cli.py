"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table1" in out

    def test_run_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "{(s,*,CO)}" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "pndca" in out and "rsm" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "IPPS 2003" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
