"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table1" in out

    def test_run_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "{(s,*,CO)}" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_unknown_message_has_no_stray_quotes(self, capsys):
        """Regression: the KeyError was printed as its repr, wrapping the
        message in quotes (``"unknown experiment ..."``)."""
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("unknown experiment 'fig99'")
        assert main(["run", "fig99", "--metrics"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("unknown experiment 'fig99'")

    def test_list_survives_docstring_less_module(self, capsys, monkeypatch):
        """Regression: a module with no docstring crashed ``repro list``
        with IndexError on ``__doc__.splitlines()[0]``."""
        import types

        import repro.experiments as experiments

        bare = types.ModuleType("bare")  # __doc__ is None
        registry = dict(experiments.REGISTRY)
        registry["bare1"] = (bare, lambda: "")
        monkeypatch.setattr(experiments, "REGISTRY", registry)
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bare1" in out

    @pytest.mark.parametrize(
        "flags",
        [
            ["--checkpoint-dir", "/tmp/x"],
            ["--checkpoint-every", "5"],
            ["--checkpoint-seconds", "1.5"],
            ["--resume", "x.json"],
        ],
        ids=["dir", "every", "seconds", "resume"],
    )
    def test_checkpoint_flags_rejected_for_experiments(self, capsys, flags):
        """Regression: the cadence flags were silently ignored while
        ``--checkpoint-dir``/``--resume`` correctly exited 2 — all four
        are rejected consistently now."""
        assert main(["run", "table1", *flags]) == 2
        err = capsys.readouterr().err
        assert flags[0] in err and "only apply to resilience runs" in err

    def test_sweep_rejected_for_experiments(self, capsys):
        assert main(["run", "table1", "--sweep"]) == 2
        assert "--sweep only applies to scenario runs" in capsys.readouterr().err

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "pndca" in out and "rsm" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "IPPS 2003" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


def _warning_report():
    from repro.lint.diagnostics import Diagnostic, LintReport

    report = LintReport()
    report.add(Diagnostic("SR043", "kernel:fake", "seeded warning"))
    return report


class TestLintCli:
    """Exit codes and ``--json`` schema across the lint passes."""

    def test_model_pass_exit_zero(self, capsys):
        assert main(["lint", "--model", "ziff"]) == 0
        out = capsys.readouterr().out
        assert "conflict-free" in out and "0 error(s)" in out

    def test_bad_tiling_exit_one(self, capsys):
        assert main(["lint", "--model", "ziff", "--tiling", "1:1,1"]) == 1
        assert "SR001" in capsys.readouterr().out

    def test_bad_tiling_json_schema(self, capsys):
        rc = main(
            ["lint", "--model", "ziff", "--tiling", "1:1,1", "--json"]
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert {d["code"] for d in doc["diagnostics"]} == {"SR001"}
        for diag in doc["diagnostics"]:
            assert set(diag) >= {
                "code", "severity", "slug", "subject", "message", "data",
            }

    def test_kernels_pass_json(self, capsys):
        assert main(["lint", "--kernels", "--json", "--strict"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True and doc["diagnostics"] == []

    def test_native_pass_json(self, capsys):
        assert main(["lint", "--native", "--json", "--strict"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        notes = " ".join(doc["notes"])
        assert "native-c" in notes and "native-numba" in notes

    def test_kernels_and_native_combine(self, capsys):
        assert main(["lint", "--kernels", "--native", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert any("native-c" in n for n in doc["notes"])
        assert any("kernel" in n for n in doc["notes"])

    def test_strict_mode_fails_on_warnings(self, capsys, monkeypatch):
        from repro.lint import kernel_lint

        monkeypatch.setattr(kernel_lint, "lint_kernels", _warning_report)
        assert main(["lint", "--kernels"]) == 0
        capsys.readouterr()
        assert main(["lint", "--kernels", "--strict"]) == 1
        assert "SR043" in capsys.readouterr().out

    def test_native_errors_fail_without_strict(self, capsys, monkeypatch):
        import repro.lint.native as native

        def broken():
            from repro.lint.diagnostics import Diagnostic, LintReport

            report = LintReport()
            report.add(
                Diagnostic("SR062", "native:c:fake", "seeded error")
            )
            return report

        monkeypatch.setattr(native, "lint_native", broken)
        assert main(["lint", "--native"]) == 1
        assert "SR062" in capsys.readouterr().out

    def test_list_codes_spans_registry(self, capsys):
        from repro.lint.diagnostics import CODES

        assert main(["lint", "--list-codes"]) == 0
        out = capsys.readouterr().out
        assert all(code in out for code in CODES)
