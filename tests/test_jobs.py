"""Tests for the crash-safe batch orchestrator (:mod:`repro.jobs`).

The journal's torn-tail contract (drop exactly the damaged final
record, refuse mid-file corruption), job-key determinism, the
orchestrator's bit-identity with the serial sweep loop, the chaos-driven
recovery ladder (kill-job retry, stall-job deadline, sticky serial
degradation), resume-as-cache-hit, and the CLI surface.
"""

import io
import json
import signal

import pytest

from repro.__main__ import main
from repro.jobs import (
    JobOrchestrator,
    JournalCorruptError,
    JournalError,
    JournalWriter,
    decode_record,
    encode_record,
    job_key,
    replay_journal,
)
from repro.obs.metrics import MetricsCollector
from repro.obs.trace import Tracer
from repro.resilience.chaos import ChaosMonkey, FaultSpec
from repro.scenario import loads_scenario, run_scenario

# a fast two-point sweep: RSM on a 6x6 lattice, ~10ms per point
SWEEP = """\
[scenario]
name = "t"

[model]
species = ["*", "A", "B"]

[[model.reactions]]
name = "A_ads"
type = "adsorption"
species = "A"
rate = 0.4

[[model.reactions]]
name = "B2_ads"
type = "dissociative_adsorption"
species = "B"
rate = 0.3

[[model.reactions]]
name = "A+B"
type = "pair_reaction"
a = "A"
b = "B"
rate = 2.0

[lattice]
shape = [6, 6]

[engine]
kind = "rsm"

[run]
seed = 0
until = 0.5

[sweep]
seed = [0, 1]
"""


def sweep_spec(extra: str = ""):
    return loads_scenario(SWEEP + extra)


def serial_lines(spec):
    """The baseline: sorted digest lines of the serial sweep loop."""
    out = io.StringIO()
    assert run_scenario(spec, sweep=True, out=out) == 0
    return sorted(
        line for line in out.getvalue().splitlines() if line.startswith("sweep ")
    )


def campaign_lines(text: str) -> list[str]:
    return sorted(
        line for line in text.splitlines() if line.startswith("sweep ")
    )


class TestJournal:
    """repro.jobs/1 envelope, writer, torn-tail replay."""

    def test_record_roundtrip(self):
        payload = {"event": "done", "key": "abc", "line": "sweep ..."}
        assert decode_record(encode_record(payload)) == payload

    def test_decode_rejects_bad_crc(self):
        line = encode_record({"event": "done"})
        record = json.loads(line)
        record["payload"]["event"] = "fail"  # CRC now disagrees
        with pytest.raises(JournalCorruptError, match="CRC mismatch"):
            decode_record(json.dumps(record))

    def test_decode_rejects_wrong_schema(self):
        record = json.loads(encode_record({"event": "done"}))
        record["schema"] = "repro.ckpt/1"
        with pytest.raises(JournalCorruptError, match="schema"):
            decode_record(json.dumps(record))

    def test_job_key_is_deterministic_and_order_free(self):
        a = job_key("d" * 64, {"seed": 1, "rates.x": 0.5})
        b = job_key("d" * 64, {"rates.x": 0.5, "seed": 1})
        assert a == b and len(a) == 16
        assert a != job_key("e" * 64, {"seed": 1, "rates.x": 0.5})
        assert a != job_key("d" * 64, {"seed": 2, "rates.x": 0.5})

    def _write(self, path, n=4):
        with JournalWriter(path, fsync=False) as w:
            for i in range(n):
                w.append({"event": "done", "key": f"k{i}", "line": f"l{i}"})
        return w

    def test_replay_intact(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self._write(path)
        replay = replay_journal(path)
        assert not replay.torn
        assert [r["key"] for r in replay.records] == ["k0", "k1", "k2", "k3"]
        assert set(replay.completed()) == {"k0", "k1", "k2", "k3"}

    @pytest.mark.parametrize("mode", ["truncate", "flip"])
    def test_torn_tail_drops_exactly_the_last_record(self, tmp_path, mode):
        path = tmp_path / "journal.jsonl"
        writer = self._write(path)
        # the chaos harness tears the tail the way a crash mid-append does
        ChaosMonkey(seed=3).corrupt_file(
            path, mode=mode, tail=writer.last_line_bytes
        )
        replay = replay_journal(path)
        assert replay.torn and replay.torn_reason
        assert [r["key"] for r in replay.records] == ["k0", "k1", "k2"]
        assert replay.last_good["key"] == "k2"
        assert "last good entry: done k2" in replay.describe_tail()

    def test_mid_file_damage_is_corruption_not_a_torn_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self._write(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][: len(lines[1]) // 2] + b"\n"  # settled record
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptError, match="line 2"):
            replay_journal(path)

    def test_blank_separator_lines_are_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self._write(path, n=2)
        path.write_bytes(path.read_bytes() + b"\n\n")
        replay = replay_journal(path)
        assert not replay.torn and len(replay.records) == 2


class TestOrchestrator:
    """Supervised execution, the recovery ladder, resume semantics."""

    def run_campaign(self, spec, tmp_path, **kw):
        out = io.StringIO()
        defaults = dict(
            n_workers=2, journal_dir=tmp_path / "j", backoff_base=0.01
        )
        defaults.update(kw)
        resume = defaults.pop("resume", False)
        orch = JobOrchestrator((spec,), **defaults)
        code = orch.run(resume=resume, out=out)
        return orch, code, out.getvalue()

    def test_digest_lines_bit_identical_to_serial(self, tmp_path):
        spec = sweep_spec()
        _, code, text = self.run_campaign(spec, tmp_path)
        assert code == 0
        assert campaign_lines(text) == serial_lines(spec)

    def test_resume_is_a_pure_cache_hit(self, tmp_path):
        spec = sweep_spec()
        self.run_campaign(spec, tmp_path)
        orch, code, text = self.run_campaign(spec, tmp_path, resume=True)
        assert code == 0
        assert orch.n_cached == 2 and orch.n_done == 0
        assert "resume: 2 cached, 0 to run" in text
        assert campaign_lines(text) == serial_lines(spec)

    def test_refuses_nonempty_journal_without_resume(self, tmp_path):
        spec = sweep_spec()
        self.run_campaign(spec, tmp_path)
        with pytest.raises(JournalError, match="--resume"):
            self.run_campaign(spec, tmp_path)

    def test_refuses_resume_of_a_different_campaign(self, tmp_path):
        self.run_campaign(sweep_spec(), tmp_path)
        other = loads_scenario(SWEEP.replace("rate = 0.4", "rate = 0.5"))
        with pytest.raises(JournalError, match="different campaign"):
            self.run_campaign(other, tmp_path, resume=True)

    def test_kill_job_is_retried_and_observed(self, tmp_path):
        spec = sweep_spec()
        chaos = ChaosMonkey(faults=(FaultSpec("kill-job", at=1),))
        metrics = MetricsCollector()
        tracer = Tracer()
        orch, code, text = self.run_campaign(
            spec, tmp_path, chaos=chaos, metrics=metrics, tracer=tracer
        )
        assert code == 0
        assert campaign_lines(text) == serial_lines(spec)
        assert orch.n_retries >= 1 and orch.n_respawns >= 1
        snap = metrics.snapshot()
        assert snap.counters["jobs.retries"] >= 1
        assert snap.counters["jobs.respawns"] >= 1
        fails = [e for e in tracer.events if e[0] == "job" and e[3]["status"] == "fail"]
        assert fails and "died" in fails[0][3]["error"]
        replay = replay_journal(orch.journal_path)
        assert list(replay.events("fail"))

    def test_stall_job_hits_the_deadline_and_recovers(self, tmp_path):
        spec = sweep_spec()
        chaos = ChaosMonkey(faults=(FaultSpec("stall-job", at=1, delay=5.0),))
        orch, code, text = self.run_campaign(
            spec, tmp_path, chaos=chaos, deadline=0.4
        )
        assert code == 0
        assert campaign_lines(text) == serial_lines(spec)
        fails = list(replay_journal(orch.journal_path).events("fail"))
        assert any("deadline exceeded" in f["error"] for f in fails)

    def test_retry_exhaustion_degrades_to_sticky_serial(self, tmp_path):
        spec = sweep_spec()
        # every dispatch dies: with max_retries=0 the first loss degrades
        chaos = ChaosMonkey(
            faults=tuple(FaultSpec("kill-job", at=i) for i in range(1, 9))
        )
        metrics = MetricsCollector()
        orch, code, text = self.run_campaign(
            spec, tmp_path, chaos=chaos, max_retries=0, metrics=metrics
        )
        assert code == 0
        assert orch._degraded
        assert "(degraded)" in text
        assert campaign_lines(text) == serial_lines(spec)
        assert metrics.snapshot().counters["jobs.degraded"] >= 1
        assert list(replay_journal(orch.journal_path).events("degrade"))

    def test_torn_journal_resumes_bit_identically(self, tmp_path):
        spec = sweep_spec()
        chaos = ChaosMonkey(
            faults=(FaultSpec("corrupt-journal", at=4, mode="flip"),)
        )
        with pytest.raises(JournalError, match="simulated crash"):
            self.run_campaign(spec, tmp_path, chaos=chaos)
        orch, code, text = self.run_campaign(spec, tmp_path, resume=True)
        assert code == 0
        assert "dropped torn tail record" in text
        assert campaign_lines(text) == serial_lines(spec)
        assert not replay_journal(orch.journal_path).torn

    def test_signal_flag_drains_and_resumes(self, tmp_path):
        spec = sweep_spec()
        out = io.StringIO()
        orch = JobOrchestrator(
            (spec,), n_workers=2, journal_dir=tmp_path / "j"
        )
        orch._signal = signal.SIGTERM  # as the handler would set it
        assert orch.run(out=out) == 130
        assert "drain" in out.getvalue()
        assert list(replay_journal(orch.journal_path).events("drain"))
        _, code, text = self.run_campaign(spec, tmp_path, resume=True)
        assert code == 0
        assert campaign_lines(text) == serial_lines(spec)

    def test_per_job_checkpoint_dirs(self, tmp_path):
        spec = sweep_spec()
        ckpt = tmp_path / "ckpt"
        _, code, _ = self.run_campaign(
            spec, tmp_path, checkpoint_dir=ckpt, checkpoint_every=5
        )
        assert code == 0
        digest = spec.digest()
        for seed in (0, 1):
            sub = ckpt / job_key(digest, {"seed": seed})
            assert list(sub.glob("ckpt_*.json"))

    def test_scenario_without_sweep_is_one_base_job(self, tmp_path):
        spec = loads_scenario(SWEEP.split("[sweep]")[0])
        orch, code, text = self.run_campaign(spec, tmp_path)
        assert code == 0 and orch.n_done == 1
        assert "sweep (base) digest" in text

    def test_journal_is_optional(self, tmp_path):
        spec = sweep_spec()
        _, code, text = self.run_campaign(spec, tmp_path, journal_dir=None)
        assert code == 0
        assert campaign_lines(text) == serial_lines(spec)


class TestSweepCli:
    """`python -m repro sweep` surface."""

    def write_spec(self, tmp_path):
        p = tmp_path / "s.toml"
        p.write_text(SWEEP)
        return p

    def test_sweep_and_resume(self, capsys, tmp_path):
        p = self.write_spec(tmp_path)
        journal = tmp_path / "j"
        assert main(["sweep", str(p), "--journal", str(journal)]) == 0
        first = campaign_lines(capsys.readouterr().out)
        assert len(first) == 2
        assert main(["sweep", str(p), "--journal", str(journal), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume: 2 cached, 0 to run" in out
        assert campaign_lines(out) == first

    def test_resume_without_journal_exits_2(self, capsys, tmp_path):
        p = self.write_spec(tmp_path)
        assert main(["sweep", str(p), "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_bad_chaos_spec_exits_2(self, capsys, tmp_path):
        p = self.write_spec(tmp_path)
        assert main(["sweep", str(p), "--chaos", "kill-job"]) == 2
        assert "kind@poll" in capsys.readouterr().err

    def test_chaos_kill_job_campaign_still_completes(self, capsys, tmp_path):
        p = self.write_spec(tmp_path)
        assert main(["sweep", str(p), "--chaos", "kill-job@1",
                     "--backoff", "0.01"]) == 0
        out = capsys.readouterr().out
        assert len(campaign_lines(out)) == 2
        assert "1 respawns" in out

    def test_run_sweep_resume_names_repro_sweep(self, capsys, tmp_path):
        p = self.write_spec(tmp_path)
        assert main(["run", str(p), "--sweep", "--resume",
                     "--checkpoint-dir", str(tmp_path / "c")]) == 2
        assert "repro sweep" in capsys.readouterr().err
