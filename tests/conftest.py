"""Shared fixtures for the test suite.

Markers
-------
``slow``
    Long-running tests: statistical/long-horizon checks, the full
    backend differential matrix
    (``test_backends.py::TestDifferentialMatrix``) and the compiled
    kernel speedup gate (``test_backends.py::TestSpeedup``).  The
    default run excludes them (``addopts = "-q -m 'not slow'"`` in
    pyproject.toml); run them with ``pytest -m slow``, or everything
    with ``pytest -m ''``.  CI's backend-matrix job runs the slow
    differential suite explicitly — fast backend smoke coverage stays
    in the default tier-1 run.
"""

import numpy as np
import pytest

from repro.core import Lattice, Model, ReactionType
from repro.models import ziff_model


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def ziff():
    """The CO-oxidation (Table I) model with unit-ish rates."""
    return ziff_model(k_co=1.0, k_o2=0.5, k_co2=2.0)


@pytest.fixture
def small_lattice():
    """A 10x10 lattice (multiple of 5 and 2: all tilings apply)."""
    return Lattice((10, 10))


@pytest.fixture
def adsorption_1d():
    """Minimal 1-d model: A adsorbs on a vacant site."""
    return Model(
        ["*", "A"],
        [ReactionType("ads", [((0,), "*", "A")], 2.0)],
        name="adsorption-1d",
    )
