"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import Lattice, Model, ReactionType
from repro.models import ziff_model


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def ziff():
    """The CO-oxidation (Table I) model with unit-ish rates."""
    return ziff_model(k_co=1.0, k_o2=0.5, k_co2=2.0)


@pytest.fixture
def small_lattice():
    """A 10x10 lattice (multiple of 5 and 2: all tilings apply)."""
    return Lattice((10, 10))


@pytest.fixture
def adsorption_1d():
    """Minimal 1-d model: A adsorbs on a vacant site."""
    return Model(
        ["*", "A"],
        [ReactionType("ads", [((0,), "*", "A")], 2.0)],
        name="adsorption-1d",
    )
