"""Tests for the model definitions in repro.models."""

import numpy as np
import pytest

from repro.core import Configuration, Lattice
from repro.dmc import RSM
from repro.models import (
    OSCILLATING,
    diffusion_model_1d,
    diffusion_model_2d,
    empty_surface,
    equally_spaced,
    hex_surface,
    ising_model_2d,
    magnetization,
    mean_field_rhs,
    pt100_model,
    random_gas,
    random_spins,
    single_file_model,
    tracer_displacements,
    zgb_model,
    ziff_model,
)


class TestZiff:
    def test_seven_types(self):
        m = ziff_model()
        assert m.n_types == 7
        assert m.groups() == ["CO+O", "O2_ads", "CO_ads"]

    def test_rates_assigned_per_group(self):
        m = ziff_model(k_co=3.0, k_o2=2.0, k_co2=5.0)
        assert m.reaction_types[m.type_index("CO_ads")].rate == 3.0
        assert m.reaction_types[m.type_index("O2_ads(1)")].rate == 2.0
        assert m.reaction_types[m.type_index("CO+O(3)")].rate == 5.0

    def test_empty_surface(self):
        lat = Lattice((5, 5))
        cfg = empty_surface(lat)
        assert cfg.coverage("*") == 1.0

    def test_zgb_parameterisation(self):
        m = zgb_model(0.5, k_reaction=100.0)
        # per-event totals: CO flux y, O2 flux 1-y, reaction 100
        assert m.reaction_types[m.type_index("CO_ads")].rate == 0.5
        assert 2 * m.reaction_types[m.type_index("O2_ads(0)")].rate == pytest.approx(0.5)
        assert 4 * m.reaction_types[m.type_index("CO+O(0)")].rate == pytest.approx(100.0)

    def test_zgb_validation(self):
        with pytest.raises(ValueError):
            zgb_model(0.0)
        with pytest.raises(ValueError):
            zgb_model(0.5, k_reaction=-1)

    def test_co_poisoning_at_high_y(self):
        m = zgb_model(0.9)
        lat = Lattice((10, 10))
        res = RSM(m, lat, seed=0, initial=empty_surface(lat, m)).run(until=60.0)
        assert res.final_state.coverage("CO") > 0.9


class TestPt100:
    def test_species_and_types(self):
        m = pt100_model()
        assert list(m.species) == ["h", "hC", "s", "sC", "sO"]
        assert m.n_types == 52

    def test_five_chunk_partition_valid(self):
        from repro.partition import five_chunk_partition

        m = pt100_model()
        p = five_chunk_partition(Lattice((10, 10)))
        ok, reason = p.check_conflict_free(m)
        assert ok, reason

    def test_rate_override(self):
        m = pt100_model({"k_diff": 2.5})
        idx = [i for i, rt in enumerate(m.reaction_types) if rt.group == "diff"]
        assert all(m.reaction_types[i].rate == 2.5 for i in idx)

    def test_unknown_rate_key(self):
        with pytest.raises(KeyError):
            pt100_model({"k_zzz": 1.0})

    def test_hex_surface(self):
        lat = Lattice((4, 4))
        cfg = hex_surface(lat)
        assert cfg.coverage("h") == 1.0

    def test_mean_field_conserves_total(self):
        theta = np.array([0.3, 0.2, 0.2, 0.2, 0.1])
        d = mean_field_rhs(theta, OSCILLATING)
        assert d.sum() == pytest.approx(0.0, abs=1e-12)

    def test_mean_field_oscillates(self):
        from scipy.integrate import solve_ivp

        sol = solve_ivp(
            lambda t, y: mean_field_rhs(y, OSCILLATING),
            (0, 300),
            [1.0, 0, 0, 0, 0],
            max_step=0.2,
        )
        co = sol.y[1] + sol.y[3]
        late = sol.t > 150
        assert co[late].max() - co[late].min() > 0.3  # a live limit cycle

    def test_phase_plus_adsorbate_conserved(self):
        # total sites conserved trivially; also no O ever appears on hex
        m = pt100_model()
        lat = Lattice((10, 10))
        res = RSM(m, lat, seed=0, initial=hex_surface(lat, m)).run(until=5.0)
        assert res.final_state.counts().sum() == lat.n_sites


class TestDiffusion:
    def test_particle_conservation_all_simulators(self, rng):
        from repro.ca import NDCA

        m = diffusion_model_2d()
        lat = Lattice((10, 10))
        initial = random_gas(lat, m, 0.4, rng)
        n0 = initial.counts()[1]
        for cls in (RSM, NDCA):
            res = cls(m, lat, seed=0, initial=initial).run(until=5.0)
            assert res.final_state.counts()[1] == n0

    def test_density_validation(self, rng):
        m = diffusion_model_2d()
        with pytest.raises(ValueError):
            random_gas(Lattice((5, 5)), m, 1.5, rng)

    def test_1d_model(self):
        m = diffusion_model_1d()
        assert m.n_types == 2
        assert m.ndim == 1


class TestIsing:
    def test_32_types(self):
        m = ising_model_2d(beta=0.5)
        assert m.n_types == 32

    def test_detailed_balance_rates(self):
        import math

        m = ising_model_2d(beta=0.7, coupling=1.0)
        # flipping + with all-+ neighbours vs flipping - with all-+
        k_up = m.reaction_types[m.type_index("flip[+|++++]")].rate
        k_dn = m.reaction_types[m.type_index("flip[-|++++]")].rate
        # dE(+->-) = +8J, dE(-->+) = -8J: ratio = exp(-beta * 8)
        assert k_up / k_dn == pytest.approx(math.exp(-0.7 * 8.0))

    def test_infinite_temperature_symmetric(self):
        m = ising_model_2d(beta=0.0)
        rates = {rt.rate for rt in m.reaction_types}
        assert rates == {0.5}

    def test_magnetization(self, rng):
        m = ising_model_2d(beta=0.5)
        lat = Lattice((6, 6))
        cfg = random_spins(lat, m, rng, p_up=1.0)
        assert magnetization(cfg) == pytest.approx(1.0)

    def test_low_temperature_orders(self):
        m = ising_model_2d(beta=1.0)
        lat = Lattice((8, 8))
        rng = np.random.default_rng(0)
        cfg = random_spins(lat, m, rng, p_up=0.9)
        res = RSM(m, lat, seed=1, initial=cfg).run(until=30.0)
        assert abs(magnetization(res.final_state)) > 0.8


class TestSingleFile:
    def test_tracer_replay_conserves_order(self):
        m = single_file_model()
        lat = Lattice((32,))
        initial = equally_spaced(lat, m, 8)
        sim = RSM(m, lat, seed=3, initial=initial, record_events=True)
        sim.run(until=20.0)
        disp = tracer_displacements(initial, sim.trace, m)
        assert disp.shape == (8,)
        # single-file: displacement spread stays modest (subdiffusive)
        assert np.abs(disp).max() < 32

    def test_tracer_needs_1d(self):
        m = single_file_model()
        lat = Lattice((4, 4))
        from repro.core.events import EventTrace

        cfg = Configuration.empty(lat, m.species)
        with pytest.raises(ValueError, match="1-d"):
            tracer_displacements(cfg, EventTrace(), m)

    def test_equally_spaced_validation(self):
        m = single_file_model()
        with pytest.raises(ValueError):
            equally_spaced(Lattice((4,)), m, 5)
