"""Tests for repro.io (result archives and text reports)."""

import numpy as np
import pytest

from repro.core import Lattice
from repro.dmc import RSM, CoverageObserver
from repro.io import (
    format_series,
    format_surface,
    format_table,
    load_result_data,
    save_result,
)


class TestTraceRoundtrip:
    def _result(self, ziff, record=False):
        return RSM(
            ziff, Lattice((8, 8)), seed=2,
            observers=[CoverageObserver(0.5)],
            record_events=record,
        ).run(until=2.0)

    def test_roundtrip_metadata(self, ziff, tmp_path):
        res = self._result(ziff)
        f = tmp_path / "run.npz"
        save_result(f, res)
        data = load_result_data(f)
        assert data["algorithm"] == "RSM"
        assert data["model_name"] == res.model_name
        assert tuple(data["lattice_shape"]) == (8, 8)
        assert data["n_trials"] == res.n_trials

    def test_roundtrip_series(self, ziff, tmp_path):
        res = self._result(ziff)
        f = tmp_path / "run.npz"
        save_result(f, res)
        data = load_result_data(f)
        assert np.array_equal(data["times"], res.times)
        for sp, series in res.coverage.items():
            assert np.array_equal(data["coverage"][sp], series)
        assert np.array_equal(data["final_state"], res.final_state.array)

    def test_roundtrip_events(self, ziff, tmp_path):
        res = self._result(ziff, record=True)
        f = tmp_path / "run.npz"
        save_result(f, res)
        data = load_result_data(f)
        assert len(data["events"]) == len(res.events)
        assert np.allclose(data["events"].times, res.events.times)

    def test_no_events_key_when_absent(self, ziff, tmp_path):
        res = self._result(ziff, record=False)
        f = tmp_path / "run.npz"
        save_result(f, res)
        assert "events" not in load_result_data(f)


class TestReports:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "0.001" in out

    def test_format_table_row_length_check(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series_downsamples(self):
        t = np.linspace(0, 1, 500)
        out = format_series(t, {"x": t * 2}, max_rows=10)
        assert len(out.splitlines()) <= 13

    def test_format_series_empty(self):
        assert "empty" in format_series(np.empty(0), {})

    def test_format_surface(self):
        surf = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = format_surface("N", [10, 20], "p", [2, 4], surf)
        assert "N\\p" in out
        assert "4" in out

    def test_format_surface_shape_check(self):
        with pytest.raises(ValueError):
            format_surface("N", [10], "p", [2, 4], np.ones((2, 2)))
