"""Unit tests for VSSM and FRM (the rejection-free DMC baselines)."""

import numpy as np
import pytest

from repro.core import Lattice, Model, ReactionType
from repro.dmc import FRM, RSM, VSSM


@pytest.fixture
def ads_model():
    return Model(
        ["*", "A"],
        [
            ReactionType("ads", [((0, 0), "*", "A")], 1.0),
            ReactionType("des", [((0, 0), "A", "*")], 0.5),
        ],
        name="ads-des",
    )


class TestVSSM:
    def test_every_trial_executes(self, ads_model):
        res = VSSM(ads_model, Lattice((6, 6)), seed=0).run(until=3.0)
        assert res.n_executed == res.n_trials > 0

    def test_reproducible(self, ads_model):
        lat = Lattice((6, 6))
        a = VSSM(ads_model, lat, seed=3).run(until=3.0)
        b = VSSM(ads_model, lat, seed=3).run(until=3.0)
        assert np.array_equal(a.final_state.array, b.final_state.array)

    def test_enabled_bookkeeping_consistent(self, ziff):
        lat = Lattice((6, 6))
        sim = VSSM(ziff, lat, seed=1)
        sim.run(until=2.0)
        comp = sim.compiled
        for i in range(comp.n_types):
            expected = set(comp.enabled_anchor_sites(sim.state.array, i).tolist())
            assert set(sim._enabled[i]) == expected

    def test_absorbing_state_terminates(self):
        model = Model(
            ["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 3.0)]
        )
        res = VSSM(model, Lattice((4, 4)), seed=0).run(until=100.0)
        assert res.final_state.coverage("A") == 1.0
        assert res.final_time == 100.0  # advanced to the horizon

    def test_rejects_deterministic_time(self, ads_model):
        with pytest.raises(ValueError):
            VSSM(ads_model, Lattice((4, 4)), time_mode="deterministic")

    def test_total_enabled_rate(self, ads_model):
        lat = Lattice((4, 4))
        sim = VSSM(ads_model, lat, seed=0)
        # empty lattice: only adsorption enabled at every site
        assert sim.total_enabled_rate() == pytest.approx(16 * 1.0)


class TestFRM:
    def test_every_trial_executes(self, ads_model):
        res = FRM(ads_model, Lattice((6, 6)), seed=0).run(until=3.0)
        assert res.n_executed == res.n_trials > 0

    def test_reproducible(self, ads_model):
        lat = Lattice((6, 6))
        a = FRM(ads_model, lat, seed=3).run(until=3.0)
        b = FRM(ads_model, lat, seed=3).run(until=3.0)
        assert np.array_equal(a.final_state.array, b.final_state.array)

    def test_event_times_increasing(self, ads_model):
        sim = FRM(ads_model, Lattice((5, 5)), seed=2, record_events=True)
        sim.run(until=4.0)
        assert (np.diff(sim.trace.times) >= 0).all()

    def test_pending_bookkeeping(self, ziff):
        sim = FRM(ziff, Lattice((6, 6)), seed=1)
        sim.run(until=1.0)
        comp = sim.compiled
        expected = sum(
            comp.enabled_anchor_sites(sim.state.array, i).size
            for i in range(comp.n_types)
        )
        assert sim.pending() == expected

    def test_absorbing_state_terminates(self):
        model = Model(
            ["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 3.0)]
        )
        res = FRM(model, Lattice((4, 4)), seed=0).run(until=50.0)
        assert res.final_state.coverage("A") == 1.0

    def test_rejects_deterministic_time(self, ads_model):
        with pytest.raises(ValueError):
            FRM(ads_model, Lattice((4, 4)), time_mode="deterministic")


class TestCrossValidation:
    """RSM, VSSM and FRM simulate the same Master Equation."""

    def test_equilibrium_coverage_agreement(self, ads_model):
        # adsorption/desorption equilibrium: theta = k_ads/(k_ads+k_des) = 2/3
        lat = Lattice((20, 20))
        for cls in (RSM, VSSM, FRM):
            res = cls(ads_model, lat, seed=7).run(until=15.0)
            assert res.final_state.coverage("A") == pytest.approx(2 / 3, abs=0.08), cls

    def test_ziff_transient_agreement(self, ziff):
        # mean O coverage at t=3 across a few seeds should agree
        lat = Lattice((12, 12))
        means = {}
        for cls in (RSM, VSSM, FRM):
            vals = [
                cls(ziff, lat, seed=s).run(until=3.0).final_state.coverage("O")
                for s in range(4)
            ]
            means[cls.__name__] = np.mean(vals)
        assert means["VSSM"] == pytest.approx(means["RSM"], abs=0.1)
        assert means["FRM"] == pytest.approx(means["RSM"], abs=0.1)
