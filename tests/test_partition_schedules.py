"""Tests for multi-partition schedules in PNDCA and the tiling family."""

import numpy as np
import pytest

from repro.ca import PNDCA
from repro.core import Lattice
from repro.partition import five_chunk_family, five_chunk_partition


@pytest.fixture
def family(ziff, small_lattice):
    parts = five_chunk_family(small_lattice)
    for p in parts:
        p.validate_conflict_free(ziff)
    return parts


class TestFamily:
    def test_four_distinct_partitions(self, family, small_lattice):
        # pairwise different partitions (not mere relabelings): compare
        # the same-chunk relation on a probe pair of sites
        def same_chunk(p, a, b):
            lab = p.chunk_of()
            return lab[a] == lab[b]

        lat = small_lattice
        a = lat.flat_index((0, 0))
        b = lat.flat_index((1, 2))  # same chunk under (1,2), not under (2,1)
        rel = [same_chunk(p, a, b) for p in family]
        assert len(set(rel)) == 2  # the relation differs across the family

    def test_all_conflict_free(self, ziff, family):
        for p in family:
            ok, reason = p.check_conflict_free(ziff)
            assert ok, (p.name, reason)

    def test_all_five_chunks(self, family):
        assert all(p.m == 5 for p in family)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            five_chunk_family(Lattice((10,)))


class TestSchedules:
    def test_cycle_rotates(self, ziff, small_lattice, family):
        sim = PNDCA(
            ziff, small_lattice, seed=0, partition=family,
            partition_schedule="cycle", strategy="ordered",
        )
        seen = []
        for _ in range(6):
            sim._step_block(until=np.inf)
            seen.append(sim.partition.name)
        assert seen[:4] == [p.name for p in family]
        assert seen[4] == family[0].name  # wrapped around

    def test_random_schedule_runs(self, ziff, small_lattice, family):
        sim = PNDCA(
            ziff, small_lattice, seed=0, partition=family,
            partition_schedule="random",
        )
        res = sim.run(until=3.0)
        assert res.n_executed > 0

    def test_single_partition_unchanged_behaviour(self, ziff, small_lattice):
        p = five_chunk_partition(small_lattice)
        p.validate_conflict_free(ziff)
        a = PNDCA(ziff, small_lattice, seed=5, partition=p).run(until=3.0)
        b = PNDCA(ziff, small_lattice, seed=5, partition=[p]).run(until=3.0)
        assert np.array_equal(a.final_state.array, b.final_state.array)

    def test_schedule_validation(self, ziff, small_lattice, family):
        with pytest.raises(ValueError, match="schedule"):
            PNDCA(
                ziff, small_lattice, partition=family,
                partition_schedule="fibonacci",
            )
        with pytest.raises(ValueError, match="at least one"):
            PNDCA(ziff, small_lattice, partition=[])

    def test_kinetics_unaffected_statistically(self, ziff, family):
        # rotating partitions must not change the coverage kinetics
        lat = Lattice((10, 10))
        fam = five_chunk_family(lat)
        for p in fam:
            p.validate_conflict_free(ziff)
        single = np.mean(
            [
                PNDCA(ziff, lat, seed=s, partition=fam[0])
                .run(until=4.0).final_state.coverage("O")
                for s in range(5)
            ]
        )
        rotating = np.mean(
            [
                PNDCA(ziff, lat, seed=s + 30, partition=fam)
                .run(until=4.0).final_state.coverage("O")
                for s in range(5)
            ]
        )
        assert rotating == pytest.approx(single, abs=0.12)
