"""Unit tests for repro.core.compiled."""

import numpy as np
import pytest

from repro.core import Configuration


@pytest.fixture
def compiled(ziff, small_lattice):
    return ziff.compile(small_lattice)


@pytest.fixture
def state(ziff, small_lattice):
    return Configuration.empty(small_lattice, ziff.species)


class TestTables:
    def test_type_count_and_rates(self, compiled, ziff):
        assert compiled.n_types == 7
        assert compiled.total_rate == pytest.approx(ziff.total_rate)
        assert compiled.type_cum[-1] == 1.0

    def test_maps_match_offsets(self, compiled, small_lattice, ziff):
        ct = compiled.types[ziff.type_index("O2_ads(0)")]
        s = small_lattice.flat_index((2, 3))
        assert ct.maps[0][s] == s
        assert ct.maps[1][s] == small_lattice.flat_index((3, 3))

    def test_codes(self, compiled, ziff):
        ct = compiled.types[ziff.type_index("CO_ads")]
        assert ct.srcs == [ziff.species.code("*")]
        assert ct.tgts == [ziff.species.code("CO")]


class TestScalarOps:
    def test_enabled_on_empty(self, compiled, state, ziff):
        # adsorptions enabled everywhere, reactions nowhere
        assert compiled.is_enabled(state.array, ziff.type_index("CO_ads"), 0)
        assert compiled.is_enabled(state.array, ziff.type_index("O2_ads(0)"), 0)
        assert not compiled.is_enabled(state.array, ziff.type_index("CO+O(0)"), 0)

    def test_execute_writes_pattern(self, compiled, state, ziff, small_lattice):
        t = ziff.type_index("O2_ads(1)")
        s = small_lattice.flat_index((4, 4))
        compiled.execute(state.array, t, s)
        assert state.get((4, 4)) == "O"
        assert state.get((4, 5)) == "O"

    def test_enabled_types_at(self, compiled, state, ziff):
        enabled = compiled.enabled_types_at(state.array, 0)
        names = [ziff.reaction_types[i].name for i in enabled]
        assert set(names) == {"CO_ads", "O2_ads(0)", "O2_ads(1)"}

    def test_reaction_pipeline(self, compiled, state, ziff, small_lattice):
        # place CO at s and O east of it -> CO+O(0) enabled
        state.set((5, 5), "CO")
        state.set((6, 5), "O")  # (1, 0) = +row
        t = ziff.type_index("CO+O(0)")
        s = small_lattice.flat_index((5, 5))
        assert compiled.is_enabled(state.array, t, s)
        compiled.execute(state.array, t, s)
        assert state.get((5, 5)) == "*"
        assert state.get((6, 5)) == "*"


class TestVectorOps:
    def test_match_sites(self, compiled, state, ziff):
        sites = np.arange(10, dtype=np.intp)
        mask = compiled.match_sites(state.array, ziff.type_index("CO_ads"), sites)
        assert mask.all()
        state.array[3] = 1  # CO occupies site 3
        mask = compiled.match_sites(state.array, ziff.type_index("CO_ads"), sites)
        assert not mask[3] and mask.sum() == 9

    def test_enabled_anchor_sites(self, compiled, state, ziff, small_lattice):
        state.set((0, 0), "CO")
        state.set((0, 1), "O")
        anchors = compiled.enabled_anchor_sites(
            state.array, ziff.type_index("CO+O(1)")
        )
        assert anchors.tolist() == [small_lattice.flat_index((0, 0))]

    def test_enabled_rate_total_empty_lattice(self, compiled, state, ziff):
        n = compiled.n_sites
        expected = n * (1.0 + 0.5 + 0.5)  # CO_ads + two O2 orientations
        assert compiled.enabled_rate_total(state.array) == pytest.approx(expected)

    def test_enabled_rate_total_subset(self, compiled, state):
        sites = np.arange(5, dtype=np.intp)
        assert compiled.enabled_rate_total(state.array, sites) == pytest.approx(
            5 * 2.0
        )

    def test_affected_anchors_cross(self, compiled, small_lattice):
        s = small_lattice.flat_index((5, 5))
        affected = compiled.affected_anchors([s])
        # anchors whose union neighborhood reaches (5,5): the von
        # Neumann cross around it
        expected = sorted(
            small_lattice.flat_index(c)
            for c in [(5, 5), (4, 5), (6, 5), (5, 4), (5, 6)]
        )
        assert affected.tolist() == expected
