"""Unit tests for repro.core.events."""

import numpy as np
import pytest

from repro.core.events import Event, EventTrace


class TestEventTrace:
    def test_append_and_len(self):
        t = EventTrace(capacity=2)
        t.append(0.5, 1, 10)
        t.append(0.8, 2, 20)
        t.append(1.1, 1, 30)  # forces growth
        assert len(t) == 3
        assert t.times.tolist() == [0.5, 0.8, 1.1]
        assert t.type_indices.tolist() == [1, 2, 1]
        assert t.sites.tolist() == [10, 20, 30]

    def test_extend(self):
        t = EventTrace(capacity=1)
        t.extend(np.array([1.0, 2.0]), np.array([0, 1]), np.array([5, 6]))
        assert len(t) == 2
        assert t.times.tolist() == [1.0, 2.0]

    def test_extend_validates_lengths(self):
        t = EventTrace()
        with pytest.raises(ValueError):
            t.extend(np.array([1.0]), np.array([0, 1]), np.array([5]))

    def test_getitem(self):
        t = EventTrace()
        t.append(0.5, 3, 7)
        ev = t[0]
        assert ev == Event(0.5, 3, 7)
        assert t[-1] == ev
        with pytest.raises(IndexError):
            t[1]

    def test_of_type(self):
        t = EventTrace()
        for i, ty in enumerate([0, 1, 0, 2]):
            t.append(float(i), ty, i)
        sub = t.of_type(0)
        assert len(sub) == 2
        assert sub.sites.tolist() == [0, 2]

    def test_at_site(self):
        t = EventTrace()
        t.append(0.1, 0, 5)
        t.append(0.2, 1, 9)
        t.append(0.3, 2, 5)
        assert t.at_site(5).type_indices.tolist() == [0, 2]

    def test_waiting_times(self):
        t = EventTrace()
        for time in (1.0, 1.5, 4.0):
            t.append(time, 0, 0)
        assert t.waiting_times().tolist() == [1.0, 0.5, 2.5]

    def test_waiting_times_empty(self):
        assert EventTrace().waiting_times().size == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)

    def test_views_do_not_include_spare_capacity(self):
        t = EventTrace(capacity=100)
        t.append(1.0, 0, 0)
        assert t.times.shape == (1,)
