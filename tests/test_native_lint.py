"""Tests for ``repro.lint.native`` — the SR060-range native verifier.

Four layers:

* unit tests of the polynomial interval arithmetic (the decision
  procedure every bounds proof reduces to) and of the two front-ends
  (the mini C parser and the ``@njit`` AST lowering), including the
  fail-closed rejections of constructs outside the restricted subset,
* the clean pass: the shipped cnative translation unit and the numba
  twins must be proven in-bounds, overflow-free and order-admissible,
* adversarial mutants of the shipped sources — an off-by-one bound, an
  int32 narrowing, swapped ctypes argtypes, a widened table pointer, a
  reversed trial loop and a reordered record write — each of which must
  trip *exactly* its intended SR06x code with a site-level diagnostic,
* the integration seams: the registration self-check gate of the
  cnative backend, the compiler-identity cache digest, the bench
  provenance verdict and the docstring/registry parity.
"""

import pytest

from repro.backends import cnative
from repro.backends.cnative import _C_SOURCE, CTYPES_SIGNATURES
from repro.lint.diagnostics import CODES
from repro.lint.native import (
    C_SPECS,
    NATIVE_CODES,
    NUMBA_SPECS,
    NativeSyntaxError,
    lint_native,
    lint_verdict,
    verify_c_translation_unit,
    verify_numba_functions,
)
from repro.lint.native.cfront import parse_c_unit
from repro.lint.native.pyfront import jit_source, parse_numba_funcs
from repro.lint.native.sym import TOP, Interval, Poly


def codes_of(report):
    return sorted({d.code for d in report.diagnostics})


# ----------------------------------------------------------------------
# symbolic layer
# ----------------------------------------------------------------------
class TestPoly:
    def test_lower_bound_substitution(self):
        # T*C*N - C*N >= 0 needs T >= 1: provable only with the slack
        t1 = Poly.sym("T", lower=1)
        t0 = Poly.sym("T", lower=0)
        c = Poly.sym("C")
        n = Poly.sym("N")
        assert (t1 * c * n - c * n).is_nonneg()
        assert not (t0 * c * n - c * n).is_nonneg()

    def test_int_coercion(self):
        n = Poly.sym("N")
        assert (2 * n + 1) - (n + n) == Poly.const(1)
        assert (1 - Poly.const(1)).const_value() == 0
        assert Poly.const(3) <= 5
        assert n <= n + 2

    def test_incomparable_symbols(self):
        a, b = Poly.sym("a"), Poly.sym("b")
        assert not a <= b
        assert not b <= a

    def test_const_value(self):
        assert Poly.const(7).const_value() == 7
        assert Poly.sym("x").const_value() is None
        assert Poly.const(0).is_const()


class TestInterval:
    def test_mul_const_scaling_flips_on_negative(self):
        iv = Interval(Poly.const(1), Poly.sym("n"))
        neg = iv.mul(Interval.const(-2))
        assert str(neg.lo) == "-2*n" and neg.hi.const_value() == -2

    def test_mul_unknown_is_top(self):
        assert Interval(Poly.const(1), None).mul(
            Interval.exact(Poly.sym("n"))
        ) is TOP
        assert not TOP.known

    def test_join_keeps_provably_ordered_endpoints(self):
        n = Poly.sym("n")
        a = Interval(Poly.const(0), n)
        b = Interval(Poly.const(1), n + 1)
        j = a.join(b)
        assert j.lo.const_value() == 0 and str(j.hi) == "1 + n"

    def test_join_incomparable_degrades(self):
        a = Interval.exact(Poly.sym("a"))
        b = Interval.exact(Poly.sym("b"))
        assert a.join(b) == TOP


# ----------------------------------------------------------------------
# front-ends
# ----------------------------------------------------------------------
class TestCFront:
    def test_parses_shipped_translation_unit(self):
        funcs = {f.name: f for f in parse_c_unit(_C_SOURCE)}
        assert set(funcs) == set(CTYPES_SIGNATURES)
        for name, (kinds, _ret) in CTYPES_SIGNATURES.items():
            assert len(funcs[name].params) == len(kinds)

    def test_comments_hex_and_casts(self):
        unit = parse_c_unit(
            "/* block */ // line\n"
            "int64_t f(const int64_t *a, int64_t n) {\n"
            "    int64_t x = 0x10;\n"
            "    int64_t *p = (int64_t *)0;\n"
            "    for (int64_t i = 0; i < n; ++i)\n"
            "        x += a[i];\n"
            "    return x;\n"
            "}\n"
        )
        assert [f.name for f in unit] == ["f"]
        assert unit[0].ret.bits == 64 and not unit[0].ret.pointer

    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("int64_t f(int64_t n) { while (n) { --n; } return n; }", "while"),
            ("int64_t f(int64_t n) { return g(n); }", "calls"),
            (
                "int64_t f(int64_t n) "
                "{ for (int64_t i = 0; i < n; i += 2) { } return 0; }",
                "increment",
            ),
        ],
    )
    def test_rejects_constructs_outside_subset(self, source, fragment):
        with pytest.raises(NativeSyntaxError, match=fragment):
            parse_c_unit(source)

    def test_parse_failure_fails_closed_as_sr062(self):
        report = verify_c_translation_unit(
            "int64_t f(int64_t n) { while (n) { --n; } return n; }",
            CTYPES_SIGNATURES,
        )
        assert codes_of(report) == ["SR062"]
        assert "nothing is proven" in report.diagnostics[0].message


class TestPyFront:
    def test_extracts_njit_twins_with_spec_parameters(self):
        names = tuple(s.name for s in NUMBA_SPECS)
        funcs = {f.name: f for f in parse_numba_funcs(jit_source(), names)}
        assert set(funcs) == set(names)
        for spec in NUMBA_SPECS:
            assert funcs[spec.name].param_names() == tuple(
                p.name for p in spec.params
            )

    def test_rejects_unsupported_python(self):
        source = (
            "def _jit():\n"
            "    def run_trials(sites):\n"
            "        while True:\n"
            "            break\n"
        )
        with pytest.raises(NativeSyntaxError):
            parse_numba_funcs(source, ("run_trials",))


# ----------------------------------------------------------------------
# the clean pass: shipped sources must be proven safe
# ----------------------------------------------------------------------
class TestCleanPass:
    def test_shipped_c_source_is_proven(self):
        report = verify_c_translation_unit(_C_SOURCE, CTYPES_SIGNATURES)
        assert report.ok(strict=True), report.render()
        assert any("native-c: 3 entry points" in n for n in report.notes)

    def test_shipped_numba_twins_are_proven(self):
        report = verify_numba_functions(jit_source())
        assert report.ok(strict=True), report.render()
        assert any("native-numba: 3 @njit twins" in n for n in report.notes)

    def test_full_pass_over_both_tiers(self):
        report = lint_native()
        assert report.ok(strict=True), report.render()
        assert len(report.notes) >= 2

    def test_specs_cover_ctypes_table(self):
        assert tuple(s.name for s in C_SPECS) == tuple(CTYPES_SIGNATURES)
        for spec in C_SPECS:
            kinds, _ = CTYPES_SIGNATURES[spec.name]
            assert len(spec.params) == len(kinds)


# ----------------------------------------------------------------------
# adversarial mutants: each trips exactly one code, at the site
# ----------------------------------------------------------------------
class TestMutants:
    def test_off_by_one_bound_is_sr062(self):
        mutant = _C_SOURCE.replace(
            "for (; c < nc; ++c)", "for (; c <= nc; ++c)", 1
        )
        report = verify_c_translation_unit(mutant, CTYPES_SIGNATURES)
        assert codes_of(report) == ["SR062"]
        first = report.diagnostics[0]
        assert first.subject == "native:c:repro_run_trials"
        assert "line" in first.message and "in bounds" in first.message

    def test_int32_narrowing_is_sr063(self):
        mutant = _C_SOURCE.replace(
            "const int64_t *tm = maps + t * c_max * n_sites;",
            "const int32_t off = t * c_max * n_sites;\n"
            "        const int64_t *tm = maps + off;",
            1,
        )
        report = verify_c_translation_unit(mutant, CTYPES_SIGNATURES)
        assert codes_of(report) == ["SR063"]
        assert "truncate" in report.diagnostics[0].message

    def test_swapped_ctypes_argtypes_is_sr060(self):
        bad = dict(CTYPES_SIGNATURES)
        kinds, ret = bad["repro_run_trials"]
        k = list(kinds)
        k[0], k[5] = k[5], k[0]  # state (ptr) <-> c_max (i64)
        bad["repro_run_trials"] = (tuple(k), ret)
        report = verify_c_translation_unit(_C_SOURCE, bad)
        assert codes_of(report) == ["SR060"]
        positions = {d.data.get("position") for d in report.diagnostics}
        assert positions == {0, 5}

    def test_widened_table_pointer_is_sr061(self):
        mutant = _C_SOURCE.replace("const int32_t *nch", "const int64_t *nch")
        report = verify_c_translation_unit(mutant, CTYPES_SIGNATURES)
        assert codes_of(report) == ["SR061"]
        assert all(d.data.get("param") == "nch" for d in report.diagnostics)

    def test_reversed_trial_loop_is_sr064(self):
        mutant = _C_SOURCE.replace(
            "for (int64_t i = 0; i < n_trials; ++i)",
            "for (int64_t i = n_trials - 1; i >= 0; --i)",
            1,
        )
        report = verify_c_translation_unit(mutant, CTYPES_SIGNATURES)
        assert codes_of(report) == ["SR064"]
        assert "descending" in report.diagnostics[0].message

    def test_record_write_after_increment_is_sr062(self):
        # ++n_exec hoisted above the rec write: rec + 3*n_exec then
        # runs one record past the buffer on the last executed trial
        mutant = _C_SOURCE.replace(
            """        if (rec) {
            int64_t *r = rec + 3 * n_exec;
            r[0] = i;
            r[1] = t;
            r[2] = s;
        }
        ++n_exec;""",
            """        ++n_exec;
        if (rec) {
            int64_t *r = rec + 3 * n_exec;
            r[0] = i;
            r[1] = t;
            r[2] = s;
        }""",
        )
        assert mutant != _C_SOURCE
        report = verify_c_translation_unit(mutant, CTYPES_SIGNATURES)
        assert codes_of(report) == ["SR062"]
        assert all("rec" in d.message for d in report.diagnostics)

    def test_numba_off_by_one_is_sr062(self):
        mutant = jit_source().replace("s = sites[i]", "s = sites[i + 1]", 1)
        report = verify_numba_functions(mutant)
        assert codes_of(report) == ["SR062"]
        assert report.diagnostics[0].subject == "native:numba:run_trials"


# ----------------------------------------------------------------------
# integration seams
# ----------------------------------------------------------------------
class TestRegistrationGate:
    def test_shipped_backend_passes_self_check(self):
        assert cnative.cnative_self_check() == []

    def test_self_check_reports_abi_drift(self, monkeypatch):
        bad = dict(CTYPES_SIGNATURES)
        kinds, ret = bad["repro_run_trials"]
        bad["repro_run_trials"] = (kinds[:-1] + ("i64",), ret)
        monkeypatch.setattr(cnative, "CTYPES_SIGNATURES", bad)
        errors = cnative.cnative_self_check()
        assert errors and all("SR06" in e for e in errors)

    def test_verifier_crash_is_not_a_verdict(self, monkeypatch):
        from repro.lint.native import verify as verify_mod

        def boom(*a, **k):
            raise RuntimeError("verifier bug")

        monkeypatch.setattr(verify_mod, "verify_c_translation_unit", boom)
        assert cnative.cnative_self_check() == []

    def test_skip_env_is_the_documented_escape_hatch(self):
        assert cnative.LINT_SKIP_ENV == "REPRO_NATIVE_LINT_SKIP"


class TestCompilerIdentityCache:
    def test_digest_includes_compiler_identity(self, monkeypatch, tmp_path):
        monkeypatch.setenv(cnative.CACHE_ENV, str(tmp_path))
        monkeypatch.setattr(cnative, "_compiler_id_cache", "cc fake 1.0")
        first = cnative.library_path()
        monkeypatch.setattr(cnative, "_compiler_id_cache", "cc fake 2.0")
        second = cnative.library_path()
        assert first != second
        assert all(p.startswith(str(tmp_path)) for p in (first, second))

    def test_no_compiler_gets_stable_identity(self, monkeypatch):
        monkeypatch.setattr(cnative, "_compiler_id_cache", None)
        monkeypatch.setattr(cnative, "_find_compiler", lambda: None)
        assert cnative._compiler_identity() == "no-cc"
        assert cnative._compiler_identity() == "no-cc"  # memoised

    def test_evict_stale_drops_only_superseded_artifacts(self, tmp_path):
        keep = "repro_cnative_aaaa.so"
        stale = "repro_cnative_bbbb.so"
        other = "unrelated.so"
        for name in (keep, stale, other):
            (tmp_path / name).write_bytes(b"")
        cnative._evict_stale(str(tmp_path), keep)
        assert sorted(p.name for p in tmp_path.iterdir()) == sorted(
            [keep, other]
        )


class TestVerdict:
    def test_verdict_shape_and_stability(self):
        v = lint_verdict()
        assert v["ok"] is True and v["errors"] == []
        assert v["codes"] == list(NATIVE_CODES)
        assert len(v["digest"]) == 12
        assert lint_verdict()["digest"] == v["digest"]

    def test_bench_record_carries_verdict(self):
        from repro.obs import bench

        assert bench._native_lint_verdict()["codes"] == list(NATIVE_CODES)

    def test_verdict_survives_verifier_crash(self, monkeypatch):
        from repro.lint.native import verify as verify_mod

        def boom():
            raise RuntimeError("verifier bug")

        monkeypatch.setattr(verify_mod, "lint_native", boom)
        v = verify_mod.lint_verdict()
        assert v["ok"] is False and v["errors"] == ["verifier-crash"]


class TestRegistryParity:
    def test_native_codes_are_registered(self):
        assert set(NATIVE_CODES) <= set(CODES)
        for code in NATIVE_CODES:
            severity, slug, _desc = CODES[code]
            assert severity == "error" and slug.startswith("native-")

    def test_package_docstring_lists_every_code(self):
        import repro.lint as lint_pkg

        for code in CODES:
            assert f"``{code}``" in lint_pkg.__doc__, code
        assert "{code_table}" not in lint_pkg.__doc__

    def test_list_codes_covers_full_registry(self, capsys):
        from repro.lint.cli import main

        assert main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in CODES:
            assert code in out
