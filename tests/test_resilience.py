"""Checkpoint/resume: schema, corruption diagnostics, bit-identity.

The hard guarantee under test: a run checkpointed at step ``k`` and
resumed into a freshly constructed engine is **bit-identical** to the
same run uninterrupted — state, clock, trial counters, RNG stream and
the observers' sampled series all match exactly.  Asserted for every
engine with a resume path (RSM, NDCA, PNDCA, L-PNDCA and the stacked
ensembles).
"""

import numpy as np
import pytest

from repro.core import Lattice
from repro.dmc.base import CoverageObserver
from repro.resilience import (
    CKPT_SCHEMA,
    CheckpointCorruptError,
    CheckpointMismatchError,
    CheckpointPolicy,
    Checkpointer,
    checkpoint_paths,
    current_checkpointer,
    decode_array,
    encode_array,
    engine_fingerprint,
    last_good_checkpoint,
    load_checkpoint,
    use_checkpoints,
    write_checkpoint,
)
from repro.resilience.checkpoint import restore_rng_state, rng_state

UNTIL = 3.0


# ----------------------------------------------------------------------
# engine factories for the differential bit-identity matrix
# ----------------------------------------------------------------------
def _mk_rsm(model, lat, seed):
    from repro.dmc.rsm import RSM

    # small trial blocks so a short run crosses several step boundaries
    return RSM(model, lat, seed=seed, block=512,
               observers=[CoverageObserver(0.5)])


def _mk_ndca(model, lat, seed):
    from repro.ca.ndca import NDCA

    return NDCA(model, lat, seed=seed, observers=[CoverageObserver(0.5)])


def _mk_pndca(model, lat, seed):
    from repro.ca.pndca import PNDCA
    from repro.partition import five_chunk_partition

    return PNDCA(
        model, lat, seed=seed, partition=five_chunk_partition(lat),
        strategy="random-order", observers=[CoverageObserver(0.5)],
    )


def _mk_pndca_cycle(model, lat, seed):
    from repro.ca.pndca import PNDCA
    from repro.partition import five_chunk_family

    return PNDCA(
        model, lat, seed=seed, partition=five_chunk_family(lat),
        strategy="ordered", partition_schedule="cycle",
    )


def _mk_lpndca(model, lat, seed):
    from repro.ca.lpndca import LPNDCA
    from repro.partition import five_chunk_partition

    return LPNDCA(
        model, lat, seed=seed, partition=five_chunk_partition(lat), L=4,
        observers=[CoverageObserver(0.5)],
    )


ENGINES = {
    "rsm": _mk_rsm,
    "ndca": _mk_ndca,
    "pndca": _mk_pndca,
    "pndca-cycle": _mk_pndca_cycle,
    "lpndca": _mk_lpndca,
}


def _mk_ens_rsm(model, lat, seed):
    from repro.ensemble import EnsembleRSM

    return EnsembleRSM(
        model, lat, n_replicas=3, seed=seed, sample_interval=0.5, block=512
    )


def _mk_ens_ndca(model, lat, seed):
    from repro.ensemble import EnsembleNDCA

    return EnsembleNDCA(
        model, lat, n_replicas=3, seed=seed, sample_interval=0.5
    )


def _mk_ens_pndca(model, lat, seed):
    from repro.ensemble import EnsemblePNDCA
    from repro.partition import five_chunk_partition

    return EnsemblePNDCA(
        model, lat, n_replicas=3, seed=seed, sample_interval=0.5,
        partition=five_chunk_partition(lat), strategy="random-order",
        schedule_seed=17,
    )


ENSEMBLES = {
    "ens-rsm": _mk_ens_rsm,
    "ens-ndca": _mk_ens_ndca,
    "ens-pndca": _mk_ens_pndca,
}


# ----------------------------------------------------------------------
class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(every_steps=0)
        with pytest.raises(ValueError):
            CheckpointPolicy(every_steps=None, every_seconds=0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(every_steps=None, every_seconds=None)

    def test_step_trigger(self):
        p = CheckpointPolicy(every_steps=3)
        assert not p.due(2, 1e9)  # seconds trigger unset: never fires
        assert p.due(3, 0.0)

    def test_seconds_trigger(self):
        p = CheckpointPolicy(every_steps=None, every_seconds=10.0)
        assert not p.due(10**6, 9.0)
        assert p.due(0, 10.0)

    def test_either_trigger(self):
        p = CheckpointPolicy(every_steps=5, every_seconds=10.0)
        assert p.due(5, 0.0)
        assert p.due(0, 11.0)
        assert not p.due(4, 9.0)


class TestCodecs:
    def test_array_round_trip(self, rng):
        for dtype in (np.uint8, np.int64, np.float64):
            a = (rng.random((4, 7)) * 100).astype(dtype)
            b = decode_array(encode_array(a))
            assert b.dtype == a.dtype and b.shape == a.shape
            assert np.array_equal(a, b)

    def test_array_decode_garbage(self):
        with pytest.raises(CheckpointCorruptError):
            decode_array({"dtype": "uint8", "shape": [3], "data": "!!!"})

    def test_rng_state_round_trip(self):
        a = np.random.default_rng(5)
        b = np.random.default_rng(99)
        a.random(17)  # advance into the stream
        restore_rng_state(b, rng_state(a))
        assert np.array_equal(a.random(32), b.random(32))

    def test_rng_state_through_counting_wrapper(self):
        from repro.obs.metrics import CountingGenerator, MetricsCollector

        a = CountingGenerator(np.random.default_rng(5), MetricsCollector())
        a.random(9)
        b = np.random.default_rng(0)
        restore_rng_state(b, rng_state(a))
        assert np.array_equal(a.random(16), b.random(16))

    def test_rng_bit_generator_mismatch(self):
        a = np.random.default_rng(1)
        record = rng_state(a)
        record["bit_generator"] = "MT19937"
        with pytest.raises(CheckpointMismatchError, match="bit generator"):
            restore_rng_state(a, record)

    def test_rng_state_is_json_safe(self):
        import json

        json.dumps(rng_state(np.random.default_rng(3)))


class TestCheckpointFiles:
    def test_round_trip(self, tmp_path):
        payload = {"kind": "simulator", "x": [1, 2, 3]}
        p = write_checkpoint(tmp_path / "ckpt_run_000000000001.json", payload)
        assert load_checkpoint(p) == payload

    def test_schema_stamp(self, tmp_path):
        import json

        p = write_checkpoint(tmp_path / "ckpt_run_000000000001.json", {"a": 1})
        record = json.loads(p.read_text())
        assert record["schema"] == CKPT_SCHEMA
        assert isinstance(record["crc32"], int)

    def test_truncation_detected(self, tmp_path):
        p = write_checkpoint(tmp_path / "ckpt_run_000000000001.json", {"a": 1})
        p.write_bytes(p.read_bytes()[: p.stat().st_size // 2])
        with pytest.raises(CheckpointCorruptError, match="truncated|JSON"):
            load_checkpoint(p)

    def test_crc_detects_flip(self, tmp_path):
        # flip a byte inside the payload without breaking the JSON
        p = write_checkpoint(
            tmp_path / "ckpt_run_000000000001.json", {"a": "abcdef"}
        )
        text = p.read_text().replace("abcdef", "abcxef")
        p.write_text(text)
        with pytest.raises(CheckpointCorruptError, match="CRC mismatch"):
            load_checkpoint(p)

    def test_corrupt_error_names_last_good(self, tmp_path):
        good = write_checkpoint(
            tmp_path / "ckpt_run_000000000001.json", {"a": 1}
        )
        bad = write_checkpoint(
            tmp_path / "ckpt_run_000000000002.json", {"a": 2}
        )
        bad.write_bytes(bad.read_bytes()[:10])
        with pytest.raises(CheckpointCorruptError, match=str(good)):
            load_checkpoint(bad)

    def test_corrupt_error_when_no_good_left(self, tmp_path):
        bad = write_checkpoint(
            tmp_path / "ckpt_run_000000000001.json", {"a": 1}
        )
        bad.write_bytes(bad.read_bytes()[:10])
        with pytest.raises(CheckpointCorruptError, match="no good checkpoint"):
            load_checkpoint(bad)

    def test_unknown_schema_rejected(self, tmp_path):
        import json

        p = tmp_path / "ckpt_run_000000000001.json"
        p.write_text(json.dumps({"schema": "repro.ckpt/99", "payload": {}}))
        with pytest.raises(CheckpointCorruptError, match="schema"):
            load_checkpoint(p)

    def test_paths_ordered_by_trials(self, tmp_path):
        for n in (30, 1, 200):
            write_checkpoint(tmp_path / f"ckpt_run_{n:012d}.json", {"n": n})
        (tmp_path / "not_a_checkpoint.json").write_text("{}")
        paths = checkpoint_paths(tmp_path)
        assert [load_checkpoint(p)["n"] for p in paths] == [1, 30, 200]

    def test_last_good_skips_corrupt(self, tmp_path):
        write_checkpoint(tmp_path / "ckpt_run_000000000001.json", {"n": 1})
        bad = write_checkpoint(
            tmp_path / "ckpt_run_000000000002.json", {"n": 2}
        )
        bad.write_bytes(bad.read_bytes()[:10])
        good = last_good_checkpoint(tmp_path)
        assert good is not None and load_checkpoint(good)["n"] == 1

    def test_last_good_empty_dir(self, tmp_path):
        assert last_good_checkpoint(tmp_path) is None
        assert last_good_checkpoint(tmp_path / "missing") is None


class TestFingerprint:
    def test_mismatch_refused(self, ziff, small_lattice, tmp_path):
        a = _mk_rsm(ziff, small_lattice, seed=1)
        b = _mk_rsm(ziff, Lattice((20, 20)), seed=1)
        a.run(until=1.0)
        p = write_checkpoint(
            tmp_path / "ckpt_run_000000000001.json", a.checkpoint_payload()
        )
        with pytest.raises(CheckpointMismatchError, match="fingerprint"):
            b.resume(p)

    def test_kind_mismatch_refused(self, ziff, small_lattice):
        sim = _mk_rsm(ziff, small_lattice, seed=1)
        ens = _mk_ens_rsm(ziff, small_lattice, seed=1)
        with pytest.raises(CheckpointMismatchError, match="kind"):
            ens.restore_payload(sim.checkpoint_payload())

    def test_fingerprint_covers_rates(self, ziff, small_lattice):
        from repro.models import ziff_model

        other = ziff_model(k_co=1.0, k_o2=0.5, k_co2=3.0)
        fa = engine_fingerprint(_mk_rsm(ziff, small_lattice, 0))
        fb = engine_fingerprint(_mk_rsm(other, small_lattice, 0))
        assert fa != fb


# ----------------------------------------------------------------------
# the differential matrix: checkpoint at step k, resume, compare
# ----------------------------------------------------------------------
def _assert_sim_identical(a, b):
    assert np.array_equal(a.final_state.array, b.final_state.array)
    assert a.final_time == b.final_time
    assert a.n_trials == b.n_trials
    assert np.array_equal(a.executed_per_type, b.executed_per_type)
    assert np.array_equal(a.times, b.times)
    for k in a.coverage:
        assert np.array_equal(a.coverage[k], b.coverage[k])


@pytest.mark.parametrize("engine_key", sorted(ENGINES))
def test_resume_bit_identical(engine_key, ziff, small_lattice, tmp_path):
    mk = ENGINES[engine_key]
    baseline = mk(ziff, small_lattice, 42).run(until=UNTIL)

    ck = Checkpointer(tmp_path, CheckpointPolicy(every_steps=1), tag=engine_key)
    mk(ziff, small_lattice, 42).run(until=UNTIL, checkpoint=ck)
    paths = checkpoint_paths(tmp_path)
    assert len(paths) >= 2

    # resume from a mid-run checkpoint; the constructor seed is
    # deliberately different — the restored rng state replaces it
    mid = paths[len(paths) // 2]
    resumed = mk(ziff, small_lattice, 999).resume(mid).run(until=UNTIL)
    _assert_sim_identical(baseline, resumed)


@pytest.mark.parametrize("engine_key", sorted(ENSEMBLES))
def test_ensemble_resume_bit_identical(engine_key, ziff, small_lattice, tmp_path):
    mk = ENSEMBLES[engine_key]
    baseline = mk(ziff, small_lattice, 42).run(until=UNTIL)

    ck = Checkpointer(tmp_path, CheckpointPolicy(every_steps=1), tag=engine_key)
    mk(ziff, small_lattice, 42).run(until=UNTIL, checkpoint=ck)
    paths = checkpoint_paths(tmp_path)
    assert len(paths) >= 2

    mid = paths[len(paths) // 2]
    resumed = mk(ziff, small_lattice, 999).resume(mid).run(until=UNTIL)
    assert np.array_equal(baseline.states, resumed.states)
    assert np.array_equal(baseline.final_times, resumed.final_times)
    assert np.array_equal(baseline.n_trials, resumed.n_trials)
    assert np.array_equal(baseline.executed_per_type, resumed.executed_per_type)
    for k in baseline.coverage:
        assert np.array_equal(baseline.coverage[k], resumed.coverage[k])


def test_resume_with_metrics_enabled(ziff, small_lattice, tmp_path):
    """The CountingGenerator wrapper is transparent to checkpointing."""
    from repro.obs.metrics import MetricsCollector

    baseline = _mk_rsm(ziff, small_lattice, 42).run(until=UNTIL)
    ck = Checkpointer(tmp_path, CheckpointPolicy(every_steps=1))
    sim = _mk_rsm(ziff, small_lattice, 42)
    sim.metrics = MetricsCollector()
    from repro.obs.metrics import CountingGenerator

    sim.rng = CountingGenerator(sim.rng, sim.metrics)
    sim.run(until=UNTIL, checkpoint=ck)
    mid = checkpoint_paths(tmp_path)[1]
    resumed = _mk_rsm(ziff, small_lattice, 0).resume(mid).run(until=UNTIL)
    _assert_sim_identical(baseline, resumed)


# ----------------------------------------------------------------------
class TestCheckpointer:
    def test_policy_cadence(self, ziff, small_lattice, tmp_path):
        ck = Checkpointer(tmp_path, CheckpointPolicy(every_steps=5))
        sim = _mk_pndca(ziff, small_lattice, 1)
        sim.run(until=UNTIL, checkpoint=ck)
        # one file per 5 step blocks (file names embed monotone trials)
        assert 1 <= len(checkpoint_paths(tmp_path))
        assert ck.last_path is not None

    def test_tag_sanitised(self, tmp_path):
        ck = Checkpointer(tmp_path, tag="a b/c!")
        assert "/" not in ck.tag and " " not in ck.tag

    def test_metrics_counted(self, ziff, small_lattice, tmp_path):
        from repro.obs.metrics import MetricsCollector

        m = MetricsCollector()
        ck = Checkpointer(tmp_path, CheckpointPolicy(every_steps=1), metrics=m)
        _mk_rsm(ziff, small_lattice, 1).run(until=1.0, checkpoint=ck)
        snap = m.snapshot()
        assert snap.counter("checkpoint.writes") == len(checkpoint_paths(tmp_path))
        assert snap.counter("checkpoint.write_errors", 0) == 0

    def test_ambient_checkpointer(self, ziff, small_lattice, tmp_path):
        assert current_checkpointer() is None
        ck = Checkpointer(tmp_path, CheckpointPolicy(every_steps=1))
        with use_checkpoints(ck, signals=False) as active:
            assert current_checkpointer() is active
            _mk_rsm(ziff, small_lattice, 1).run(until=1.0)
        assert current_checkpointer() is None
        assert len(checkpoint_paths(tmp_path)) >= 1

    def test_signal_flushes_then_interrupts(self, ziff, small_lattice, tmp_path):
        import signal as signal_mod

        ck = Checkpointer(tmp_path, CheckpointPolicy(every_steps=10**9))
        sim = _mk_rsm(ziff, small_lattice, 1)
        ck.start(sim)
        ck._on_signal(signal_mod.SIGTERM, None)  # handler: flag only, no I/O
        assert ck.interrupted
        assert checkpoint_paths(tmp_path) == []  # nothing written yet
        with pytest.raises(KeyboardInterrupt, match="checkpoint flushed"):
            ck.after_step(sim)  # next step boundary: flush, then raise
        assert len(checkpoint_paths(tmp_path)) == 1
        assert ck.last_path is not None

    def test_signal_without_engine_interrupts_immediately(self, tmp_path):
        import signal as signal_mod

        ck = Checkpointer(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            ck._on_signal(signal_mod.SIGINT, None)

    def test_sigterm_mid_run_leaves_resumable_checkpoint(
        self, ziff, small_lattice, tmp_path
    ):
        """End to end: a real signal interrupts the run loop, the flushed
        checkpoint resumes bit-identically to the uninterrupted run."""
        import os
        import signal as signal_mod
        import threading

        ck = Checkpointer(tmp_path, CheckpointPolicy(every_steps=10**9))
        sim = _mk_rsm(ziff, small_lattice, 42)
        timer = threading.Timer(0.05, os.kill, (os.getpid(), signal_mod.SIGTERM))
        with use_checkpoints(ck):  # installs the deferred-flush handler
            timer.start()
            try:
                with pytest.raises(KeyboardInterrupt):
                    sim.run(until=10**9, checkpoint=ck)  # far horizon
            finally:
                timer.cancel()
        assert ck.last_path is not None
        # continue past the (timing-dependent) interrupt point and
        # compare against an uninterrupted twin at the same horizon
        resumed = _mk_rsm(ziff, small_lattice, 0).resume(ck.last_path)
        horizon = float(np.ceil(resumed.time)) + 2.0
        result = resumed.run(until=horizon)
        baseline = _mk_rsm(ziff, small_lattice, 42).run(until=horizon)
        _assert_sim_identical(baseline, result)


# ----------------------------------------------------------------------
class TestSignalDiscipline:
    """install_signals/restore_signals pairing under nesting and failure."""

    def test_double_install_is_idempotent(self, tmp_path):
        import signal as signal_mod

        original = signal_mod.getsignal(signal_mod.SIGINT)
        ck = Checkpointer(tmp_path)
        try:
            ck.install_signals()
            ck.install_signals()  # must NOT record our own handler as "old"
            assert ck._old_handlers[signal_mod.SIGINT] == original
            ck.restore_signals()
            assert signal_mod.getsignal(signal_mod.SIGINT) == original
        finally:
            signal_mod.signal(signal_mod.SIGINT, original)

    def test_nested_install_restore_unwinds_in_order(self, tmp_path):
        import signal as signal_mod

        original = signal_mod.getsignal(signal_mod.SIGINT)
        outer = Checkpointer(tmp_path / "outer")
        inner = Checkpointer(tmp_path / "inner")
        try:
            outer.install_signals()
            inner.install_signals()
            assert signal_mod.getsignal(signal_mod.SIGINT) == inner._on_signal
            inner.restore_signals()
            assert signal_mod.getsignal(signal_mod.SIGINT) == outer._on_signal
            outer.restore_signals()
            assert signal_mod.getsignal(signal_mod.SIGINT) == original
        finally:
            signal_mod.signal(signal_mod.SIGINT, original)

    def test_restore_after_restore_is_a_no_op(self, tmp_path):
        import signal as signal_mod

        original = signal_mod.getsignal(signal_mod.SIGINT)
        ck = Checkpointer(tmp_path)
        try:
            ck.install_signals()
            ck.restore_signals()
            ck.restore_signals()  # cleared handler map: nothing to undo
            assert signal_mod.getsignal(signal_mod.SIGINT) == original
        finally:
            signal_mod.signal(signal_mod.SIGINT, original)

    def test_use_checkpoints_restores_on_exception(self, tmp_path):
        import signal as signal_mod

        original = signal_mod.getsignal(signal_mod.SIGINT)
        ck = Checkpointer(tmp_path)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                with use_checkpoints(ck):
                    assert (
                        signal_mod.getsignal(signal_mod.SIGINT)
                        == ck._on_signal
                    )
                    raise RuntimeError("boom")
            assert signal_mod.getsignal(signal_mod.SIGINT) == original
            assert current_checkpointer() is None
        finally:
            signal_mod.signal(signal_mod.SIGINT, original)

    def test_nested_use_checkpoints_with_exception_unwinds(self, tmp_path):
        import signal as signal_mod

        original = signal_mod.getsignal(signal_mod.SIGINT)
        outer = Checkpointer(tmp_path / "outer")
        inner = Checkpointer(tmp_path / "inner")
        try:
            with use_checkpoints(outer):
                with pytest.raises(RuntimeError):
                    with use_checkpoints(inner):
                        raise RuntimeError("inner failure")
                # the inner scope unwound to the outer installation
                assert current_checkpointer() is outer
                assert (
                    signal_mod.getsignal(signal_mod.SIGINT)
                    == outer._on_signal
                )
            assert current_checkpointer() is None
            assert signal_mod.getsignal(signal_mod.SIGINT) == original
        finally:
            signal_mod.signal(signal_mod.SIGINT, original)


# ----------------------------------------------------------------------
class TestCLI:
    def test_round_trip_digest(self, ziff, tmp_path, capsys):
        from repro.__main__ import main

        d = str(tmp_path / "ckpts")
        assert main(["run", "zgb-rsm", "--until", "2",
                     "--checkpoint-dir", d]) == 0
        full = capsys.readouterr().out
        digest = [ln for ln in full.splitlines() if ln.startswith("digest ")]
        assert len(digest) == 1

        # resume from the newest good checkpoint in the directory
        assert main(["run", "zgb-rsm", "--until", "2", "--resume", d]) == 0
        resumed = capsys.readouterr().out
        digest2 = [ln for ln in resumed.splitlines() if ln.startswith("digest ")]
        assert digest == digest2

    def test_resume_mid_checkpoint_matches(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.resilience import checkpoint_paths as ckpt_paths

        d = tmp_path / "ckpts"
        assert main(["run", "zgb-pndca", "--until", "2",
                     "--checkpoint-dir", str(d), "--checkpoint-every", "3"]) == 0
        base = [ln for ln in capsys.readouterr().out.splitlines()
                if ln.startswith("digest ")]
        paths = ckpt_paths(d)
        assert len(paths) >= 2
        mid = paths[len(paths) // 2]
        assert main(["run", "zgb-pndca", "--until", "2",
                     "--resume", str(mid)]) == 0
        resumed = [ln for ln in capsys.readouterr().out.splitlines()
                   if ln.startswith("digest ")]
        assert base == resumed

    def test_unknown_experiment_still_errors(self, capsys):
        from repro.__main__ import main

        assert main(["run", "no-such-thing"]) == 2

    def test_resume_options_rejected_for_experiments(self, capsys):
        from repro.__main__ import main

        assert main(["run", "table1", "--resume", "/nowhere"]) == 2
        assert "resilience runs" in capsys.readouterr().err

    def test_resume_corrupt_names_last_good(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.resilience import checkpoint_paths as ckpt_paths

        d = tmp_path / "ckpts"
        assert main(["run", "zgb-rsm", "--until", "1",
                     "--checkpoint-dir", str(d), "--checkpoint-every", "1"]) == 0
        capsys.readouterr()
        paths = ckpt_paths(d)
        assert len(paths) >= 2
        corrupt = paths[-1]
        corrupt.write_bytes(corrupt.read_bytes()[:20])
        with pytest.raises(CheckpointCorruptError, match="last good checkpoint"):
            load_checkpoint(corrupt)
        # bare --resume from the directory silently skips the bad file
        assert main(["run", "zgb-rsm", "--until", "1",
                     "--checkpoint-dir", str(d), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
