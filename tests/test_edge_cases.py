"""Edge cases and failure-path tests across modules."""

import numpy as np
import pytest

from repro.core import Configuration, Lattice, Model, ReactionType
from repro.dmc import RSM, CoverageObserver, VSSM
from repro.ca import LPNDCA, PNDCA
from repro.partition import Partition, five_chunk_partition


class TestObserverEdgeCases:
    def test_fine_grid_many_samples_per_block(self, ziff):
        # sampling interval far below the per-block time span: every
        # grid point must still be sampled exactly once, in order
        lat = Lattice((6, 6))
        obs = CoverageObserver(0.01)
        sim = RSM(ziff, lat, seed=0, block=4096, observers=[obs])
        res = sim.run(until=0.5)
        assert len(res.times) == 51
        assert np.allclose(np.diff(res.times), 0.01)

    def test_interval_larger_than_run(self, ziff):
        obs = CoverageObserver(100.0)
        res = RSM(ziff, Lattice((6, 6)), seed=0, observers=[obs]).run(until=1.0)
        assert res.times.tolist() == [0.0]

    def test_multiple_observers(self, ziff):
        from repro.analysis import PairCorrelationObserver

        o1 = CoverageObserver(0.5)
        o2 = PairCorrelationObserver(0.5, "O", "O", (1, 0))
        sim = RSM(ziff, Lattice((8, 8)), seed=0, observers=[o1, o2])
        res = sim.run(until=2.0)
        assert len(res.times) == len(res.extra["pair_corr_times"])


class TestAbsorbingStates:
    def test_rsm_keeps_trialing_in_absorbing_state(self):
        # RSM does not know the state is absorbing: it keeps rejecting
        m = Model(["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 1.0)])
        lat = Lattice((4, 4))
        full = Configuration.filled(lat, m.species, "A")
        res = RSM(m, lat, seed=0, initial=full).run(until=2.0)
        assert res.n_executed == 0
        assert res.n_trials > 0
        assert res.final_time == pytest.approx(2.0)

    def test_vssm_detects_absorbing_state(self):
        m = Model(["*", "A"], [ReactionType("ads", [((0, 0), "*", "A")], 1.0)])
        lat = Lattice((4, 4))
        full = Configuration.filled(lat, m.species, "A")
        res = VSSM(m, lat, seed=0, initial=full).run(until=2.0)
        assert res.n_trials == 0
        assert res.final_time == 2.0

    def test_pndca_weighted_with_nothing_enabled(self, ziff):
        # weighted strategy must not divide by zero when no reaction is
        # enabled anywhere (fully CO-poisoned lattice: no *, no O)
        lat = Lattice((10, 10))
        p = five_chunk_partition(lat)
        p.validate_conflict_free(ziff)
        poisoned = Configuration.filled(lat, ziff.species, "CO")
        sim = PNDCA(
            ziff, lat, seed=0, initial=poisoned, partition=p, strategy="weighted"
        )
        res = sim.run(until=0.5)
        assert res.n_executed == 0


class TestLPNDCAEdges:
    def test_L_larger_than_chunk(self, ziff):
        # L exceeding the chunk size is allowed (trials sample with
        # replacement); budget capping still holds
        lat = Lattice((10, 10))
        p = five_chunk_partition(lat)
        p.validate_conflict_free(ziff)
        sim = LPNDCA(ziff, lat, seed=0, partition=p, L=75)
        sim._step_block(until=np.inf)
        assert sim.n_trials == lat.n_sites

    def test_ordered_schedule_with_tiny_L(self, ziff):
        lat = Lattice((10, 10))
        p = five_chunk_partition(lat)
        p.validate_conflict_free(ziff)
        sim = LPNDCA(
            ziff, lat, seed=0, partition=p, L=3, chunk_selection="ordered"
        )
        n = sim._step_block(until=np.inf)
        assert n == 15  # 5 chunks x 3 trials

    def test_single_site_chunks_with_replacement(self, ziff):
        lat = Lattice((6, 6))
        p = Partition.singletons(lat)
        p.validate_conflict_free(ziff)
        sim = LPNDCA(
            ziff, lat, seed=0, partition=p, L=4, chunk_selection="uniform"
        )
        res = sim.run(until=1.0)
        assert res.n_trials > 0


class TestLatticeEdges:
    def test_minimum_lattice_for_pairs(self, ziff):
        # 2x2 is the smallest lattice whose wrap keeps pair patterns sane
        res = RSM(ziff, Lattice((2, 2)), seed=0).run(until=1.0)
        assert res.final_state.counts().sum() == 4

    def test_1x_n_lattice_rejected_for_pairs(self, ziff):
        with pytest.raises(ValueError):
            ziff.compile(Lattice((1, 8)))

    def test_non_square_lattice(self, ziff):
        res = RSM(ziff, Lattice((4, 12)), seed=0).run(until=1.0)
        assert res.final_state.counts().sum() == 48

    def test_non_square_five_chunk_partition(self, ziff):
        lat = Lattice((10, 15))
        p = five_chunk_partition(lat)
        ok, reason = p.check_conflict_free(ziff)
        assert ok, reason


class TestPaperScalePresets:
    def test_runner_at_toy_scale(self, tmp_path):
        from repro.experiments.paper_scale import run_paper_scale

        out = run_paper_scale(
            "fig10", side=15, until=8.0, out_dir=tmp_path
        )
        assert "fig10" in out
        assert (tmp_path / "fig10.txt").exists()

    def test_unknown_figure(self, tmp_path):
        from repro.experiments.paper_scale import run_paper_scale

        with pytest.raises(KeyError):
            run_paper_scale("fig99", out_dir=tmp_path)


class TestResultReproducibilityAcrossRuns:
    def test_continuing_a_run_differs_from_fresh(self, ziff):
        # run() can be called again to continue; time keeps advancing
        sim = RSM(ziff, Lattice((8, 8)), seed=0)
        r1 = sim.run(until=1.0)
        r2 = sim.run(until=2.0)
        assert r2.final_time == pytest.approx(2.0)
        assert r2.n_trials > r1.n_trials
