"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments without
the ``wheel`` package (pip's legacy editable path needs a setup.py).
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
